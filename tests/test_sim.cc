/**
 * @file
 * Unit tests for the simulation kernel: event queue, random
 * generator, statistics helpers and the FIFO server.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/error.hh"
#include "sim/event_queue.hh"
#include "sim/fifo_server.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace
{

using namespace cedar::sim;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, BreaksTiesByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, SchedulingIntoThePastThrows)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.schedule(5, [] {}), cedar::sim::ScheduleError);
    });
    eq.run();
}

TEST(EventQueue, RunHonorsEventLimit)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.scheduleIn(1, forever); };
    eq.schedule(0, forever);
    EXPECT_FALSE(eq.run(1000));
    EXPECT_EQ(eq.executed(), 1000u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ResetClearsStateAndTime)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(Random, DeterministicForSameSeed)
{
    RandomGen a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    RandomGen a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Random, BelowStaysInBounds)
{
    RandomGen g(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(g.below(13), 13u);
}

TEST(Random, RangeIsInclusive)
{
    RandomGen g(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = g.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    RandomGen g(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = g.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, ExponentialHasRoughlyRequestedMean)
{
    RandomGen g(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(g.exponential(1000.0));
    EXPECT_NEAR(sum / n, 1000.0, 50.0);
}

TEST(Random, ForkDecorrelates)
{
    RandomGen a(5);
    RandomGen b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Accumulator, TracksMeanMinMax)
{
    Accumulator acc;
    acc.sample(2);
    acc.sample(4);
    acc.sample(9);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(ServerStats, AccumulatesWaitAndBusy)
{
    ServerStats st;
    st.record(5, 10);
    st.record(0, 20);
    EXPECT_EQ(st.requests(), 2u);
    EXPECT_EQ(st.waitTicks(), 5u);
    EXPECT_EQ(st.busyTicks(), 30u);
    EXPECT_DOUBLE_EQ(st.meanWait(), 2.5);
    EXPECT_DOUBLE_EQ(st.utilization(60), 0.5);
}

TEST(Histogram, PercentilesAreMonotone)
{
    Histogram h(10, 32);
    for (Tick v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_LE(h.percentile(0.5), h.percentile(0.95));
    EXPECT_EQ(h.maxSample(), 99u);
    EXPECT_FALSE(h.toString().empty());
}

TEST(Histogram, OverflowGoesToLastBucket)
{
    Histogram h(1, 4);
    h.sample(1000);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(FifoServer, IdleServerStartsImmediately)
{
    FifoServer s;
    EXPECT_EQ(s.serve(100, 10), 110u);
    EXPECT_EQ(s.stats().waitTicks(), 0u);
}

TEST(FifoServer, BusyServerQueues)
{
    FifoServer s;
    s.serve(0, 10);
    EXPECT_EQ(s.serve(5, 10), 20u);
    EXPECT_EQ(s.stats().waitTicks(), 5u);
}

TEST(FifoServer, GapLeavesServerIdle)
{
    FifoServer s;
    s.serve(0, 10);
    EXPECT_EQ(s.serve(50, 10), 60u);
    EXPECT_EQ(s.stats().waitTicks(), 0u);
    EXPECT_EQ(s.stats().busyTicks(), 20u);
}

TEST(FifoServer, ResetClearsTimeline)
{
    FifoServer s;
    s.serve(0, 100);
    s.reset();
    EXPECT_EQ(s.freeAt(), 0u);
    EXPECT_EQ(s.serve(0, 5), 5u);
}

/** Property: a FIFO server's completions are monotone in arrival
 *  order regardless of service times. */
class FifoServerProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FifoServerProperty, CompletionsMonotone)
{
    RandomGen g(GetParam());
    FifoServer s;
    Tick arrival = 0;
    Tick last = 0;
    for (int i = 0; i < 200; ++i) {
        arrival += g.below(20);
        const Tick done = s.serve(arrival, 1 + g.below(15));
        EXPECT_GE(done, last);
        EXPECT_GT(done, arrival);
        last = done;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FifoServerProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(Types, TickSecondsRoundTrip)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(secondsToTicks(1.5)), 1.5);
    EXPECT_EQ(secondsToTicks(1.0, 1e6), 1000000u);
}

} // namespace
