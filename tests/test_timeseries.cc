/**
 * @file
 * Tests for the windowed time-series telemetry (obs/timeseries.hh)
 * and the Histogram merge/rebuild primitives that power cross-study
 * aggregation (sim/stats.hh).
 *
 * The flagship guarantees under test:
 *  - recorder-off runs are bit-identical to recorder-on runs in
 *    every published field (the sampling hook is read-only and the
 *    recorder subscribes to spans only), at all five paper points;
 *  - the per-window series *conserves*: per-class deltas, fast-path
 *    and PDES deltas, span occupancy and event counts sum exactly to
 *    the end-of-run totals, and windows tile [0, CT] with aligned
 *    boundaries;
 *  - Histogram::merge/fromBuckets round-trip the serialized wait
 *    histograms with single-run percentile semantics (including the
 *    PR 3 overflow-bucket clamp).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "apps/perfect.hh"
#include "core/experiment.hh"
#include "obs/timeseries.hh"
#include "sim/error.hh"
#include "sim/stats.hh"

namespace
{

using namespace cedar;
using sim::Histogram;
using sim::Tick;

// ------------------------------------------------------------------
// Histogram::merge / fromBuckets
// ------------------------------------------------------------------

TEST(HistogramMerge, SumsBucketsCountsAndMax)
{
    Histogram a(8, 16), b(8, 16);
    a.sample(3);
    a.sample(40);
    b.sample(3);
    b.sample(1000); // overflow bucket (values >= 15 * 8 = 120)
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.maxSample(), Tick{1000});
    EXPECT_EQ(a.buckets()[0], 2u);  // two samples of 3
    EXPECT_EQ(a.buckets()[5], 1u);  // 40 / 8
    EXPECT_EQ(a.buckets()[15], 1u); // overflow
}

TEST(HistogramMerge, GeometryMismatchThrows)
{
    Histogram a(8, 16);
    EXPECT_THROW(a.merge(Histogram(16, 16)), sim::SimError);
    EXPECT_THROW(a.merge(Histogram(8, 32)), sim::SimError);
}

TEST(HistogramMerge, FromBucketsRoundTrips)
{
    Histogram a(8, 64);
    for (Tick v : {0, 5, 9, 63, 200, 4000})
        a.sample(v);
    const Histogram b =
        Histogram::fromBuckets(a.bucketWidth(), a.buckets(),
                               a.maxSample());
    EXPECT_EQ(b.count(), a.count());
    EXPECT_EQ(b.maxSample(), a.maxSample());
    EXPECT_EQ(b.buckets(), a.buckets());
    for (double f : {0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(b.percentile(f), a.percentile(f)) << f;
}

TEST(HistogramMerge, FromBucketsEmptyThrows)
{
    EXPECT_THROW(Histogram::fromBuckets(8, {}, 0), sim::SimError);
}

/**
 * The PR 3 percentile regression shape must survive a merge: with
 * every sample in the overflow bucket, percentiles report the real
 * maximum instead of a bucket-boundary fiction, and mid-range
 * percentiles stay clamped to the largest observed sample.
 */
TEST(HistogramMerge, MergePreservesOverflowClampSemantics)
{
    Histogram a(8, 16), b(8, 16);
    a.sample(500);  // overflow (>= 120)
    b.sample(9000); // overflow, larger max
    a.merge(b);
    EXPECT_EQ(a.percentile(0.5), Tick{9000});
    EXPECT_EQ(a.percentile(1.0), Tick{9000});

    // Mixed: in-range samples keep ceil-bucket semantics, clamped
    // to the merged max when the bucket edge would exceed it.
    Histogram c(8, 16), d(8, 16);
    c.sample(3);
    c.sample(3);
    d.sample(5);
    c.merge(d);
    EXPECT_EQ(c.percentile(1.0), Tick{5}); // clamp below bucket edge 8
}

// ------------------------------------------------------------------
// Recorder on/off bit-identity
// ------------------------------------------------------------------

core::RunResult
runPoint(unsigned procs, Tick tsWindow)
{
    core::RunOptions opts;
    opts.scale = 0.02;
    opts.tsWindow = tsWindow;
    return core::runExperiment(apps::perfectAppByName("FLO52"), procs,
                               opts);
}

std::string
metricsJson(const core::RunResult &r)
{
    std::ostringstream os;
    r.metrics.writeJson(os); // no time series: the historical format
    return os.str();
}

/**
 * Every published field must be identical with the recorder on and
 * off, at every paper machine point: the boundary hook only reads
 * counters, and a span subscription cannot perturb the model (the
 * analytic fast path's sole-subscriber gate watches resource_wait).
 */
TEST(TimeSeriesRecorder, RecorderOffRunsBitIdenticalAtPaperPoints)
{
    for (unsigned procs : {1u, 4u, 8u, 16u, 32u}) {
        const auto off = runPoint(procs, 0);
        const auto on = runPoint(procs, 40000);
        EXPECT_TRUE(off.timeseries.empty());
        EXPECT_FALSE(on.timeseries.empty());

        EXPECT_EQ(off.ct, on.ct) << procs;
        EXPECT_EQ(off.status, on.status) << procs;
        EXPECT_EQ(off.eventsExecuted, on.eventsExecuted) << procs;
        EXPECT_EQ(off.peakPending, on.peakPending) << procs;
        EXPECT_EQ(off.resourceWait, on.resourceWait) << procs;
        EXPECT_EQ(off.ceQueueStall, on.ceQueueStall) << procs;
        EXPECT_EQ(off.globalWords, on.globalWords) << procs;
        EXPECT_EQ(off.fastPathHits, on.fastPathHits) << procs;
        EXPECT_EQ(off.fastPathMisses, on.fastPathMisses) << procs;
        EXPECT_EQ(off.crossDomainPosts, on.crossDomainPosts) << procs;
        EXPECT_EQ(off.seqFaults, on.seqFaults) << procs;
        EXPECT_EQ(off.concFaults, on.concFaults) << procs;
        EXPECT_DOUBLE_EQ(off.machineConcurrency,
                         on.machineConcurrency)
            << procs;
        // The whole per-resource metrics document, byte for byte.
        EXPECT_EQ(metricsJson(off), metricsJson(on)) << procs;
    }
}

// ------------------------------------------------------------------
// Window conservation and tiling
// ------------------------------------------------------------------

TEST(TimeSeries, WindowsTileCompletionTimeWithAlignedBoundaries)
{
    constexpr Tick W = 30000;
    const auto r = runPoint(8, W);
    const auto &ts = r.timeseries;
    ASSERT_FALSE(ts.empty());
    EXPECT_EQ(ts.window, W);
    EXPECT_EQ(ts.numCes, 8u);
    const std::size_t expected =
        static_cast<std::size_t>(r.ct / W + (r.ct % W ? 1 : 0));
    ASSERT_EQ(ts.windows.size(), expected);
    for (std::size_t i = 0; i < ts.windows.size(); ++i) {
        const auto &w = ts.windows[i];
        EXPECT_EQ(w.start, static_cast<Tick>(i) * W);
        EXPECT_EQ(w.end, i + 1 == ts.windows.size()
                             ? r.ct
                             : static_cast<Tick>(i + 1) * W);
        EXPECT_EQ(w.ceBusy.size(), std::size_t{8});
        for (const Tick busy : w.ceBusy)
            EXPECT_LE(busy, w.width());
    }
}

TEST(TimeSeries, DeltasSumToRunTotals)
{
    const auto r = runPoint(8, 25000);
    const auto &ts = r.timeseries;
    ASSERT_FALSE(ts.empty());

    std::uint64_t events = 0, fastHits = 0, fastMisses = 0,
                  crossPosts = 0;
    obs::ClassTotals classes;
    for (const auto &w : ts.windows) {
        events += w.events;
        fastHits += w.fastHits;
        fastMisses += w.fastMisses;
        crossPosts += w.crossPosts;
        for (std::size_t c = 0; c < obs::num_resource_classes; ++c) {
            classes.requests[c] += w.classes.requests[c];
            classes.waitTicks[c] += w.classes.waitTicks[c];
            classes.busyTicks[c] += w.classes.busyTicks[c];
        }
    }
    EXPECT_EQ(events, r.eventsExecuted);
    EXPECT_EQ(fastHits, r.fastPathHits);
    EXPECT_EQ(fastMisses, r.fastPathMisses);
    EXPECT_EQ(crossPosts, r.crossDomainPosts);

    // Per-class sums must equal the end-of-run metrics document
    // (collected by the identical server walk).
    for (std::size_t c = 0; c < obs::num_resource_classes; ++c) {
        const auto cls = static_cast<obs::ResourceClass>(c);
        const auto &m = r.metrics.perClass(cls);
        EXPECT_EQ(classes.requests[c], m.requests) << toString(cls);
        EXPECT_EQ(classes.waitTicks[c], m.waitTicks) << toString(cls);
        EXPECT_EQ(classes.busyTicks[c], m.busyTicks) << toString(cls);
    }
}

/**
 * The span-derived occupancy must conserve against the raw timeline:
 * summing catTicks across windows reproduces the total span ticks
 * per TimeCat, and per-CE busy reproduces the non-idle, non-overlay
 * span ticks per CE — i.e. the overlap-split loses and duplicates
 * nothing.
 */
TEST(TimeSeries, SpanOccupancyConservesAgainstTimeline)
{
    core::RunOptions opts;
    opts.scale = 0.02;
    opts.tsWindow = 25000;
    opts.collectTimeline = true;
    const auto r = core::runExperiment(
        apps::perfectAppByName("FLO52"), 8, opts);
    const auto &ts = r.timeseries;
    ASSERT_FALSE(ts.empty());

    std::array<Tick, obs::num_time_cats> catFromSeries{};
    std::vector<Tick> busyFromSeries(ts.numCes, 0);
    for (const auto &w : ts.windows) {
        for (std::size_t c = 0; c < obs::num_time_cats; ++c)
            catFromSeries[c] += w.catTicks[c];
        for (std::size_t i = 0; i < w.ceBusy.size(); ++i)
            busyFromSeries[i] += w.ceBusy[i];
    }

    std::array<Tick, obs::num_time_cats> catFromTimeline{};
    std::vector<Tick> busyFromTimeline(ts.numCes, 0);
    for (const auto &e : r.timeline) {
        if (e.kind != obs::EventKind::span)
            continue;
        catFromTimeline[static_cast<std::size_t>(e.cat)] += e.dur;
        if (e.ce >= 0 && !e.overlay() &&
            e.cat != os::TimeCat::idle)
            busyFromTimeline[static_cast<std::size_t>(e.ce)] += e.dur;
    }

    for (std::size_t c = 0; c < obs::num_time_cats; ++c)
        EXPECT_EQ(catFromSeries[c], catFromTimeline[c])
            << os::toString(static_cast<os::TimeCat>(c));
    EXPECT_EQ(busyFromSeries, busyFromTimeline);
}

// ------------------------------------------------------------------
// JSON export compatibility
// ------------------------------------------------------------------

TEST(TimeSeries, MetricsJsonUnchangedUnlessSeriesPresent)
{
    const auto off = runPoint(4, 0);
    const auto on = runPoint(4, 40000);

    // Null and empty series leave the document byte-identical.
    std::ostringstream plain, withNull, withEmpty, withSeries;
    on.metrics.writeJson(plain);
    on.metrics.writeJson(withNull, nullptr);
    on.metrics.writeJson(withEmpty, &off.timeseries);
    EXPECT_EQ(plain.str(), withNull.str());
    EXPECT_EQ(plain.str(), withEmpty.str());

    on.metrics.writeJson(withSeries, &on.timeseries);
    EXPECT_NE(plain.str(), withSeries.str());
    EXPECT_NE(withSeries.str().find("cedar-timeseries-v1"),
              std::string::npos);
    EXPECT_NE(withSeries.str().find("class_queue_depth"),
              std::string::npos);
}

} // namespace
