/**
 * @file
 * Telemetry conservation properties: every paper point's per-CE
 * category ledger must sum to the completion time, the span timeline
 * must reproduce the ledger tick-for-tick, and capturing a timeline
 * must not perturb the simulation (aggregates bit-identical with
 * tracing on and off). Also exercises the reporter on a non-paper
 * machine geometry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/perfect.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "hw/config.hh"
#include "obs/telemetry.hh"

namespace
{

using namespace cedar;

constexpr std::size_t n_cats =
    static_cast<std::size_t>(os::TimeCat::NUM);

core::RunOptions
quickOpts(bool timeline)
{
    core::RunOptions opts;
    opts.scale = 0.02;
    opts.collectTimeline = timeline;
    return opts;
}

/** |per-CE category sum - ct| relative to ct, in percent. */
double
conservationErrorPct(const core::Report &rep)
{
    if (!rep.ct)
        return 0.0;
    return 100.0 * static_cast<double>(rep.maxConservationError) /
           static_cast<double>(rep.ct);
}

// ----- conservation at every paper point -----

class PaperPointConservation
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PaperPointConservation, LedgerSumsToCtAndSpansMatchLedger)
{
    const auto app = apps::perfectAppByName("FLO52");
    const auto r =
        core::runExperiment(app, GetParam(), quickOpts(true));
    ASSERT_EQ(r.status, sim::RunStatus::Completed);
    ASSERT_FALSE(r.timeline.empty());

    const auto rep = core::buildReport(r);

    // Every CE's categories account for the whole completion time.
    // The only slack allowed is the accounting overshoot (operations
    // in flight at finalize are charged at issue), which is tiny
    // relative to CT.
    ASSERT_EQ(rep.ces.size(), r.nprocs);
    for (const auto &row : rep.ces) {
        sim::Tick sum = 0;
        for (std::size_t c = 0; c < n_cats; ++c)
            sum += row.cat[c];
        EXPECT_EQ(sum, row.sum);
        EXPECT_GE(row.sum, r.ct) << "CE " << row.ce
                                 << " lost ticks (idle underflow)";
    }
    EXPECT_LT(conservationErrorPct(rep), 0.1);

    // Spans are emitted with the same durations as the ledger
    // charges at the same call sites, so the cross-check is exact.
    ASSERT_TRUE(rep.tracer.performed);
    EXPECT_EQ(rep.tracer.maxMismatch, 0u);
    EXPECT_EQ(rep.tracer.spanTicks, rep.tracer.acctBusyTicks);
    EXPECT_GT(rep.tracer.spanTicks, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPaperPoints, PaperPointConservation,
                         ::testing::ValuesIn(
                             hw::CedarConfig::paperProcCounts()));

// ----- non-paper geometry -----

TEST(Telemetry, NonPaperGeometryConservesAndCrossChecks)
{
    hw::CedarConfig cfg;
    cfg.nClusters = 2;
    cfg.cesPerCluster = 4;
    ASSERT_FALSE(cfg.isPaperPoint());

    const auto app = apps::perfectAppByName("ADM");
    const auto r = core::runExperiment(app, cfg, quickOpts(true));
    ASSERT_EQ(r.status, sim::RunStatus::Completed);

    const auto rep = core::buildReport(r);
    EXPECT_EQ(rep.nClusters, 2u);
    EXPECT_EQ(rep.cesPerCluster, 4u);
    ASSERT_EQ(rep.ces.size(), 8u);
    EXPECT_EQ(rep.ces.back().cluster, 1u);
    EXPECT_LT(conservationErrorPct(rep), 0.1);
    ASSERT_TRUE(rep.tracer.performed);
    EXPECT_EQ(rep.tracer.maxMismatch, 0u);
}

// ----- observation must not perturb the simulation -----

TEST(Telemetry, TimelineCaptureLeavesAggregatesBitIdentical)
{
    const auto app = apps::perfectAppByName("MDG");
    const auto off = core::runExperiment(app, 8, quickOpts(false));
    const auto on = core::runExperiment(app, 8, quickOpts(true));

    EXPECT_TRUE(off.timeline.empty());
    EXPECT_FALSE(on.timeline.empty());

    EXPECT_EQ(off.ct, on.ct);
    EXPECT_EQ(off.status, on.status);
    EXPECT_EQ(off.eventsExecuted, on.eventsExecuted);
    EXPECT_EQ(off.peakPending, on.peakPending);
    EXPECT_EQ(off.machineConcurrency, on.machineConcurrency);
    ASSERT_EQ(off.ceAcct.size(), on.ceAcct.size());
    for (std::size_t i = 0; i < off.ceAcct.size(); ++i)
        for (std::size_t c = 0; c < n_cats; ++c)
            EXPECT_EQ(off.ceAcct[i].cat[c], on.ceAcct[i].cat[c])
                << "CE " << i << " cat " << c;
    EXPECT_EQ(off.metrics.totalRequests, on.metrics.totalRequests);
    EXPECT_EQ(off.metrics.totalWaitTicks, on.metrics.totalWaitTicks);
    EXPECT_EQ(off.resourceWait, on.resourceWait);
}

// ----- report serializations -----

TEST(Telemetry, ReportJsonCarriesSchemaAndConservation)
{
    const auto app = apps::perfectAppByName("FLO52");
    const auto r = core::runExperiment(app, 4, quickOpts(true));
    const auto rep = core::buildReport(r);

    std::ostringstream json;
    rep.writeJson(json);
    EXPECT_NE(json.str().find("\"schema\": \"cedar-report-v1\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"tracer_cross_check\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"max_mismatch_ticks\": 0"),
              std::string::npos);

    std::ostringstream md;
    rep.writeMarkdown(md);
    EXPECT_NE(md.str().find("paper Figure 3"), std::string::npos);
    EXPECT_NE(md.str().find("paper Table 2"), std::string::npos);
    EXPECT_NE(md.str().find("paper Figure 4"), std::string::npos);
}

} // namespace
