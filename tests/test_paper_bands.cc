/**
 * @file
 * Regression suite against the paper's published numbers.
 *
 * Runs the five Perfect application models at FULL size over the
 * whole configuration sweep (this is the slowest test binary) and
 * asserts that every reproduced quantity stays within its
 * calibration band of the paper's Tables 1-4. These tests pin the
 * reproduction: if a model change drifts a speedup curve or an
 * overhead share out of band, they fail.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/perfect.hh"
#include "core/breakdown.hh"
#include "core/concurrency.hh"
#include "core/contention.hh"
#include "core/experiment.hh"

namespace
{

using namespace cedar;
using cedar::os::UserAct;

const std::map<std::string, std::vector<double>> paper_speedup = {
    {"FLO52", {1, 2.86, 4.23, 6.39, 8.40}},
    {"ARC2D", {1, 3.61, 6.25, 10.54, 15.06}},
    {"MDG", {1, 3.89, 7.44, 14.26, 24.43}},
    {"OCEAN", {1, 3.83, 7.16, 11.85, 15.58}},
    {"ADM", {1, 3.40, 5.84, 8.52, 8.84}},
};

const std::map<std::string, std::vector<double>> paper_concurrency = {
    {"FLO52", {1, 3.49, 6.11, 9.66, 14.82}},
    {"ARC2D", {1, 3.70, 6.82, 12.28, 20.56}},
    {"MDG", {1, 3.92, 7.60, 15.14, 28.82}},
    {"OCEAN", {1, 3.86, 7.53, 12.98, 17.27}},
    {"ADM", {1, 3.46, 6.06, 9.42, 13.56}},
};

const std::map<std::string, std::vector<double>> paper_contention = {
    {"FLO52", {0, 17, 27, 24, 21}},
    {"ARC2D", {0, 3.4, 8.8, 10.3, 14.1}},
    {"MDG", {0, 1.3, 4.1, 7.2, 13.4}},
    {"OCEAN", {0, 3.5, 6.3, 8.0, 7.4}},
    {"ADM", {0, 1.9, 4.1, 5.9, 12.5}},
};

class PaperBands : public ::testing::TestWithParam<const char *>
{
  protected:
    static const std::vector<core::RunResult> &
    sweep(const std::string &name)
    {
        static std::map<std::string, std::vector<core::RunResult>> cache;
        auto it = cache.find(name);
        if (it == cache.end()) {
            it = cache
                     .emplace(name, core::runSweep(
                                        apps::perfectAppByName(name)))
                     .first;
        }
        return it->second;
    }
};

TEST_P(PaperBands, SpeedupWithin30PercentOfPaperEverywhere)
{
    const auto &s = sweep(GetParam());
    const auto &paper = paper_speedup.at(GetParam());
    for (std::size_t i = 1; i < s.size(); ++i) {
        const double sp = s[0].seconds() / s[i].seconds();
        EXPECT_NEAR(sp, paper[i], 0.30 * paper[i])
            << GetParam() << " at " << s[i].nprocs << " proc";
    }
}

TEST_P(PaperBands, ConcurrencyWithin30PercentOfPaperEverywhere)
{
    const auto &s = sweep(GetParam());
    const auto &paper = paper_concurrency.at(GetParam());
    for (std::size_t i = 1; i < s.size(); ++i) {
        EXPECT_NEAR(s[i].machineConcurrency, paper[i], 0.30 * paper[i])
            << GetParam() << " at " << s[i].nprocs << " proc";
    }
}

TEST_P(PaperBands, ContentionGrowsAndStaysInBand)
{
    const auto &s = sweep(GetParam());
    const auto &paper = paper_contention.at(GetParam());
    for (std::size_t i = 1; i < s.size(); ++i) {
        const auto e = core::estimateContention(s[i], s[0]);
        // Shape band: within 10 percentage points of the paper.
        EXPECT_NEAR(e.ovContPct, paper[i], 10.0)
            << GetParam() << " at " << s[i].nprocs << " proc";
    }
    // Growth direction 4 -> 32 processors.
    const auto e4 = core::estimateContention(s[1], s[0]);
    const auto e32 = core::estimateContention(s[4], s[0]);
    EXPECT_GT(e32.ovContPct, e4.ovContPct * 0.6);
}

TEST_P(PaperBands, OsOverheadInPaperBandAt32)
{
    const auto &s = sweep(GetParam());
    const auto os32 = core::ctBreakdownTotal(s[4]).osTotalPct();
    // Paper: 5-21% of completion time on the 4-cluster Cedar.
    EXPECT_GE(os32, 4.0) << GetParam();
    EXPECT_LE(os32, 22.0) << GetParam();
}

TEST_P(PaperBands, MainTaskParallelizationOverheadBandAt32)
{
    const auto &s = sweep(GetParam());
    const auto ovh =
        core::userBreakdown(s[4], 0).overheadPct(s[4].ct);
    // Paper: 10-25% for the main task on the 4-cluster Cedar.
    EXPECT_GE(ovh, 3.0) << GetParam();
    EXPECT_LE(ovh, 28.0) << GetParam();
}

TEST_P(PaperBands, HelperOverheadBandAt32)
{
    const auto &s = sweep(GetParam());
    double max_h = 0;
    for (unsigned c = 1; c < s[4].nClusters; ++c) {
        max_h = std::max(
            max_h, core::userBreakdown(s[4], c).overheadPct(s[4].ct));
    }
    // Paper: 15-44% for helper tasks on the 4-cluster Cedar.
    EXPECT_GE(max_h, 8.0) << GetParam();
    EXPECT_LE(max_h, 70.0) << GetParam();
}

TEST_P(PaperBands, KernelSpinBelowOnePercentBand)
{
    const auto &s = sweep(GetParam());
    for (const auto &r : s) {
        EXPECT_LT(core::ctBreakdownTotal(r).kspinPct, 2.0)
            << GetParam() << " at " << r.nprocs << " proc";
    }
}

TEST_P(PaperBands, BarrierWaitOnlyMattersOnMulticluster)
{
    const auto &s = sweep(GetParam());
    const auto b8 =
        core::userBreakdown(s[2], 0).pctOf(UserAct::barrier_wait,
                                           s[2].ct);
    const auto b32 =
        core::userBreakdown(s[4], 0).pctOf(UserAct::barrier_wait,
                                           s[4].ct);
    EXPECT_LT(b8, 0.5) << GetParam();
    EXPECT_GT(b32, b8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Apps, PaperBands,
                         ::testing::Values("FLO52", "ARC2D", "MDG",
                                           "OCEAN", "ADM"));

TEST(PaperBandsCross, ContentionRankingMatchesTable4At32)
{
    // Paper Table 4 at 32 processors: FLO52 is the clear maximum.
    std::map<std::string, double> ov;
    for (const auto name : {"FLO52", "ARC2D", "MDG", "OCEAN", "ADM"}) {
        const auto sweep = core::runSweep(apps::perfectAppByName(name),
                                          {}, {1, 32});
        ov[name] =
            core::estimateContention(sweep[1], sweep[0]).ovContPct;
    }
    for (const auto name : {"ARC2D", "MDG", "OCEAN", "ADM"})
        EXPECT_GT(ov["FLO52"], ov[name]) << name;
}

TEST(PaperBandsCross, SpeedupRankingMatchesTable1At32)
{
    std::map<std::string, double> sp;
    for (const auto name : {"FLO52", "ARC2D", "MDG", "ADM"}) {
        const auto sweep = core::runSweep(apps::perfectAppByName(name),
                                          {}, {1, 32});
        sp[name] = sweep[0].seconds() / sweep[1].seconds();
    }
    // Paper: MDG > ARC2D > FLO52 ~ ADM.
    EXPECT_GT(sp["MDG"], sp["ARC2D"]);
    EXPECT_GT(sp["ARC2D"], sp["FLO52"]);
    EXPECT_GT(sp["ARC2D"], sp["ADM"]);
}

} // namespace
