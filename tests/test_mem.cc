/**
 * @file
 * Unit tests for the global memory substrate: address interleaving
 * and the interleaved module array.
 */

#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "mem/global_memory.hh"

namespace
{

using namespace cedar;
using cedar::sim::Tick;

TEST(AddressMap, CedarGeometry)
{
    mem::AddressMap map(32, 4);
    EXPECT_EQ(map.numModules(), 32u);
    EXPECT_EQ(map.groupSize(), 4u);
    EXPECT_EQ(map.numGroups(), 8u);
}

TEST(AddressMap, ConsecutiveWordsHitConsecutiveModules)
{
    mem::AddressMap map(32, 4);
    for (sim::Addr a = 0; a < 100; ++a)
        EXPECT_EQ(map.module(a), a % 32);
}

TEST(AddressMap, GroupChangesEveryGroupSizeWords)
{
    mem::AddressMap map(32, 4);
    EXPECT_EQ(map.group(0), 0u);
    EXPECT_EQ(map.group(3), 0u);
    EXPECT_EQ(map.group(4), 1u);
    EXPECT_EQ(map.group(31), 7u);
    EXPECT_EQ(map.group(32), 0u); // wraps around the modules
}

TEST(AddressMap, ChunkifyCoversRangeExactly)
{
    mem::AddressMap map(32, 4);
    const auto chunks = map.chunkify(2, 11);
    unsigned total = 0;
    sim::Addr expect = 2;
    for (const auto &c : chunks) {
        EXPECT_EQ(c.addr, expect);
        EXPECT_LE(c.len, map.groupSize());
        // All words of a chunk stay in one group.
        EXPECT_EQ(map.group(c.addr), map.group(c.addr + c.len - 1));
        expect += c.len;
        total += c.len;
    }
    EXPECT_EQ(total, 11u);
}

TEST(AddressMap, AlignedChunkifyProducesFullChunks)
{
    mem::AddressMap map(32, 4);
    const auto chunks = map.chunkify(8, 16);
    ASSERT_EQ(chunks.size(), 4u);
    for (const auto &c : chunks)
        EXPECT_EQ(c.len, 4u);
}

/** Property: chunkify is exact for arbitrary geometry and ranges. */
struct ChunkCase
{
    unsigned modules;
    unsigned group;
    sim::Addr addr;
    unsigned len;
};

class ChunkifyProperty : public ::testing::TestWithParam<ChunkCase>
{
};

TEST_P(ChunkifyProperty, ExactCover)
{
    const auto p = GetParam();
    mem::AddressMap map(p.modules, p.group);
    sim::Addr next = p.addr;
    unsigned total = 0;
    for (const auto &c : map.chunkify(p.addr, p.len)) {
        EXPECT_EQ(c.addr, next);
        EXPECT_GE(c.len, 1u);
        EXPECT_LE(c.len, p.group);
        next += c.len;
        total += c.len;
    }
    EXPECT_EQ(total, p.len);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ChunkifyProperty,
    ::testing::Values(ChunkCase{32, 4, 0, 1}, ChunkCase{32, 4, 3, 2},
                      ChunkCase{32, 4, 5, 64}, ChunkCase{16, 8, 7, 33},
                      ChunkCase{8, 2, 1, 17}, ChunkCase{64, 4, 63, 128}));

TEST(GlobalMemory, SingleWordTakesServiceTime)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    const auto res = gm.accessChunk(100, mem::Chunk{0, 1});
    EXPECT_EQ(res.complete, 100 + mem::GlobalMemory::word_service);
    EXPECT_EQ(res.wait, 0u);
}

TEST(GlobalMemory, ChunkWordsServeInParallelAcrossModules)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    // 4 aligned words land on 4 distinct modules: same latency as 1.
    const auto res = gm.accessChunk(0, mem::Chunk{0, 4});
    EXPECT_EQ(res.complete, mem::GlobalMemory::word_service);
}

TEST(GlobalMemory, SameModuleBackToBackQueues)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    gm.accessChunk(0, mem::Chunk{0, 1});
    const auto res = gm.accessChunk(0, mem::Chunk{32, 1}); // same module
    EXPECT_EQ(res.complete, 2 * mem::GlobalMemory::word_service);
    EXPECT_GT(res.wait, 0u);
}

TEST(GlobalMemory, DifferentModulesDoNotInterfere)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    gm.accessChunk(0, mem::Chunk{0, 1});
    const auto res = gm.accessChunk(0, mem::Chunk{1, 1});
    EXPECT_EQ(res.complete, mem::GlobalMemory::word_service);
    EXPECT_EQ(res.wait, 0u);
}

TEST(GlobalMemory, RmwAppliesFunctionInServiceOrder)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    std::uint64_t old1 = 0, old2 = 0;
    gm.rmw(0, 7, [](std::uint64_t v) { return v + 5; }, &old1);
    gm.rmw(0, 7, [](std::uint64_t v) { return v * 2; }, &old2);
    EXPECT_EQ(old1, 0u);
    EXPECT_EQ(old2, 5u);
    EXPECT_EQ(gm.peek(7), 10u);
}

TEST(GlobalMemory, RmwIsSlowerThanRead)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    const auto res = gm.rmw(0, 3, [](std::uint64_t v) { return v; });
    EXPECT_EQ(res.complete, mem::GlobalMemory::rmw_service);
}

TEST(GlobalMemory, HotSpotSerializesOnOneModule)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    sim::Tick last = 0;
    for (int i = 0; i < 10; ++i) {
        const auto res =
            gm.rmw(0, 11, [](std::uint64_t v) { return v + 1; });
        EXPECT_GT(res.complete, last);
        last = res.complete;
    }
    EXPECT_EQ(last, 10 * mem::GlobalMemory::rmw_service);
    EXPECT_EQ(gm.peek(11), 10u);
}

TEST(GlobalMemory, PokeAndPeek)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    EXPECT_EQ(gm.peek(99), 0u);
    gm.poke(99, 1234);
    EXPECT_EQ(gm.peek(99), 1234u);
}

TEST(GlobalMemory, WaitAndBusyAggregates)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    gm.accessChunk(0, mem::Chunk{0, 4});
    gm.accessChunk(0, mem::Chunk{32, 4}); // same 4 modules again
    EXPECT_EQ(gm.totalBusyTicks(), 8 * mem::GlobalMemory::word_service);
    EXPECT_EQ(gm.totalWaitTicks(), 4 * mem::GlobalMemory::word_service);
}

TEST(GlobalMemory, ResetRestoresPristineState)
{
    mem::AddressMap map(32, 4);
    mem::GlobalMemory gm(map);
    gm.poke(5, 77);
    gm.accessChunk(0, mem::Chunk{0, 4});
    gm.reset();
    EXPECT_EQ(gm.peek(5), 0u);
    EXPECT_EQ(gm.totalBusyTicks(), 0u);
}

} // namespace
