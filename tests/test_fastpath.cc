/**
 * @file
 * Tests for the analytic fast-forward path (net/fastpath.hh) and the
 * saturating-arithmetic hardening that rode along with it.
 *
 * The fast path's correctness bar is absolute: with it enabled, not a
 * single published number may change — completion time, event counts,
 * per-resource statistics, the metrics JSON and the telemetry
 * timeline must be bit-identical to the slow path. These tests pin
 * that down at every paper point, on a non-paper geometry, and on a
 * fault-injected run where the fast path must bail out entirely.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/perfect.hh"
#include "apps/workload.hh"
#include "core/experiment.hh"
#include "fault/fault.hh"
#include "hw/config.hh"
#include "mem/address_map.hh"
#include "mem/global_memory.hh"
#include "net/network.hh"
#include "sim/types.hh"

namespace
{

using namespace cedar;
using cedar::sim::Tick;
using fault::parseFaultSpec;

// ---------------------------------------------------------------
// Saturating Tick arithmetic (sim/types.hh)
// ---------------------------------------------------------------

TEST(SatArith, AddSaturatesAtMaxTick)
{
    EXPECT_EQ(sim::satAdd(0, 0), 0u);
    EXPECT_EQ(sim::satAdd(10, 32), 42u);
    EXPECT_EQ(sim::satAdd(sim::max_tick, 0), sim::max_tick);
    EXPECT_EQ(sim::satAdd(sim::max_tick, 1), sim::max_tick);
    EXPECT_EQ(sim::satAdd(sim::max_tick - 5, 5), sim::max_tick);
    EXPECT_EQ(sim::satAdd(sim::max_tick - 5, 6), sim::max_tick);
    EXPECT_EQ(sim::satAdd(Tick(1) << 63, Tick(1) << 63), sim::max_tick);
}

TEST(SatArith, ShlSaturatesInsteadOfWrapping)
{
    EXPECT_EQ(sim::satShl(1, 0), 1u);
    EXPECT_EQ(sim::satShl(1, 10), 1024u);
    EXPECT_EQ(sim::satShl(0, 63), 0u);
    // The exact boundary: 1 << 63 fits, anything past it saturates.
    EXPECT_EQ(sim::satShl(1, 63), Tick(1) << 63);
    EXPECT_EQ(sim::satShl(2, 63), sim::max_tick);
    EXPECT_EQ(sim::satShl(3, 62), Tick(3) << 62);
    EXPECT_EQ(sim::satShl(4, 62), sim::max_tick);
    // The historical bug: a backoff of 2^33 shifted by 31+ attempts
    // wrapped to garbage. Now it pins to max_tick.
    EXPECT_EQ(sim::satShl(Tick(1) << 33, 31), sim::max_tick);
    EXPECT_EQ(sim::satShl(Tick(1) << 60, 30), sim::max_tick);
    // Shift counts >= the word width are well defined here (plain
    // << would be UB).
    EXPECT_EQ(sim::satShl(1, 64), sim::max_tick);
    EXPECT_EQ(sim::satShl(1, 200), sim::max_tick);
    EXPECT_EQ(sim::satShl(0, 64), 0u); // zero shifted is still zero
}

// ---------------------------------------------------------------
// Shared run-comparison helper
// ---------------------------------------------------------------

std::string
metricsJson(const core::RunResult &r)
{
    std::ostringstream os;
    r.metrics.writeJson(os);
    return os.str();
}

/**
 * Every published number of the two runs must agree exactly. The
 * fast-path engagement counters are deliberately excluded: they are
 * the only fields allowed to differ between a fast and a slow run.
 */
void
expectBitIdentical(const core::RunResult &a, const core::RunResult &b)
{
    EXPECT_EQ(a.ct, b.ct);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.peakPending, b.peakPending);
    EXPECT_EQ(a.ceQueueStall, b.ceQueueStall);
    EXPECT_EQ(a.resourceWait, b.resourceWait);
    EXPECT_EQ(a.globalWords, b.globalWords);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.accessesDegraded, b.accessesDegraded);
    EXPECT_EQ(a.parkedCes, b.parkedCes);
    EXPECT_EQ(a.seqFaults, b.seqFaults);
    EXPECT_EQ(a.concFaults, b.concFaults);
    EXPECT_EQ(a.machineConcurrency, b.machineConcurrency);
    ASSERT_EQ(a.clusterConcurrency.size(), b.clusterConcurrency.size());
    for (std::size_t i = 0; i < a.clusterConcurrency.size(); ++i)
        EXPECT_EQ(a.clusterConcurrency[i], b.clusterConcurrency[i]);
    ASSERT_EQ(a.ceAcct.size(), b.ceAcct.size());
    EXPECT_EQ(metricsJson(a), metricsJson(b));
}

void
expectSameTimeline(const core::RunResult &a, const core::RunResult &b)
{
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
        const auto &x = a.timeline[i];
        const auto &y = b.timeline[i];
        const bool same = x.when == y.when && x.dur == y.dur &&
                          x.id == y.id && x.kind == y.kind &&
                          x.cat == y.cat && x.act == y.act &&
                          x.flags == y.flags && x.ce == y.ce &&
                          x.res == y.res;
        ASSERT_TRUE(same) << "timeline diverges at event " << i;
    }
}

core::RunResult
runPoint(const apps::AppModel &app, unsigned procs, bool fast,
         double scale)
{
    core::RunOptions o;
    o.scale = scale;
    o.fastPath = fast;
    return core::runExperiment(app, procs, o);
}

// ---------------------------------------------------------------
// Bit identity at the paper points
// ---------------------------------------------------------------

TEST(FastPathIdentity, AllPaperAppsEightProcs)
{
    for (const char *name : {"FLO52", "ARC2D", "MDG", "OCEAN", "ADM"}) {
        SCOPED_TRACE(name);
        const auto app = apps::perfectAppByName(name);
        const auto fast = runPoint(app, 8, true, 0.04);
        const auto slow = runPoint(app, 8, false, 0.04);
        EXPECT_EQ(slow.fastPathHits, 0u);
        EXPECT_EQ(slow.fastPathPatterns, 0u);
        expectBitIdentical(fast, slow);
    }
}

TEST(FastPathIdentity, Flo52AcrossMachineSizes)
{
    const auto app = apps::perfectAppByName("FLO52");
    for (const unsigned p : {1u, 4u, 16u, 32u}) {
        SCOPED_TRACE(p);
        expectBitIdentical(runPoint(app, p, true, 0.03),
                           runPoint(app, p, false, 0.03));
    }
}

TEST(FastPathIdentity, Arc2dConvoyGeometries)
{
    // ARC2D at 16/32p is where convoy phases produce the widest
    // spread of offset vectors — the workload the don't-care
    // canonicalization (DESIGN.md §10) exists for. Identity must
    // hold with the canonicalized keying engaged.
    const auto app = apps::perfectAppByName("ARC2D");
    for (const unsigned p : {16u, 32u}) {
        SCOPED_TRACE(p);
        const auto fast = runPoint(app, p, true, 0.02);
        const auto slow = runPoint(app, p, false, 0.02);
        EXPECT_GT(fast.fastPathHits, 0u);
        expectBitIdentical(fast, slow);
    }
}

TEST(FastPathIdentity, NonPaperTwoByFourGeometry)
{
    // 2 clusters x 4 CEs is not a paper point; the pattern machinery
    // must be geometry-agnostic, not tuned to the five published
    // configurations.
    hw::CedarConfig cfg;
    cfg.nClusters = 2;
    cfg.cesPerCluster = 4;
    ASSERT_NO_THROW(cfg.validate());

    const auto app = apps::perfectAppByName("FLO52");
    core::RunOptions o;
    o.scale = 0.04;
    o.fastPath = true;
    const auto fast = core::runExperiment(app, cfg, o);
    o.fastPath = false;
    const auto slow = core::runExperiment(app, cfg, o);
    EXPECT_GT(fast.fastPathHits, 0u);
    expectBitIdentical(fast, slow);
}

TEST(FastPathIdentity, TimelineMatchesEventForEvent)
{
    // With the timeline recorder subscribed, the bus has a second
    // resource_wait listener, so the fast path must either replay
    // waits exactly or refuse to engage — either way the recorded
    // stream has to match the slow path event for event.
    const auto app = apps::perfectAppByName("FLO52");
    core::RunOptions o;
    o.scale = 0.02;
    o.collectTimeline = true;
    o.fastPath = true;
    const auto fast = core::runExperiment(app, 8, o);
    o.fastPath = false;
    const auto slow = core::runExperiment(app, 8, o);
    ASSERT_GT(fast.timeline.size(), 0u);
    expectBitIdentical(fast, slow);
    expectSameTimeline(fast, slow);
}

TEST(FastPathIdentity, EngagesAndLearnsPatterns)
{
    const auto app = apps::perfectAppByName("FLO52");
    const auto r = runPoint(app, 8, true, 0.04);
    EXPECT_GT(r.fastPathHits, 0u);
    EXPECT_GT(r.fastPathPatterns, 0u);
    // Determinism: the cache is per-machine, so a repeat run learns
    // and replays the exact same patterns.
    const auto r2 = runPoint(app, 8, true, 0.04);
    EXPECT_EQ(r.fastPathHits, r2.fastPathHits);
    EXPECT_EQ(r.fastPathPatterns, r2.fastPathPatterns);
    expectBitIdentical(r, r2);
}

// ---------------------------------------------------------------
// Fault-injected run: the fast path must bail, results must match
// ---------------------------------------------------------------

apps::AppModel
gmFaultApp()
{
    apps::AppModel app;
    app.name = "fastpath-fault";
    app.steps = 2;
    apps::SerialSpec s;
    s.compute = 2000;
    s.pages = 1;
    app.phases.push_back(s);
    apps::LoopSpec l;
    l.kind = apps::LoopKind::sdoall;
    l.outerIters = 8;
    l.innerIters = 16;
    l.computePerIter = 400;
    l.words = 64;
    l.burstLen = 32;
    l.regionWords = 1 << 14;
    app.phases.push_back(l);
    return app;
}

TEST(FastPathIdentity, FaultedRunBailsAndStaysIdentical)
{
    core::RunOptions o;
    o.faults.push_back(parseFaultSpec("module:7:stuck"));
    o.gmTimeout = 30000;
    o.fastPath = true;
    const auto fast = core::runExperiment(gmFaultApp(), 8, o);
    o.fastPath = false;
    const auto slow = core::runExperiment(gmFaultApp(), 8, o);

    // Faulted memory invalidates the pattern preconditions wholesale;
    // the engagement gate must refuse every access.
    EXPECT_EQ(fast.fastPathHits, 0u);
    EXPECT_EQ(fast.fastPathPatterns, 0u);
    EXPECT_EQ(fast.status, sim::RunStatus::Faulted);
    expectBitIdentical(fast, slow);
    ASSERT_EQ(fast.faultLog.events().size(), slow.faultLog.events().size());
    for (std::size_t i = 0; i < fast.faultLog.events().size(); ++i)
        EXPECT_TRUE(fast.faultLog.events()[i] == slow.faultLog.events()[i])
            << "fault log diverges at event " << i;
}

// ---------------------------------------------------------------
// Retry-backoff overflow regression (src/hw/ce.cc)
// ---------------------------------------------------------------

TEST(BackoffOverflow, HugeBackoffSaturatesInsteadOfWrapping)
{
    // A backoff of 2^60 doubled per attempt overflows the 64-bit tick
    // on the 4th retry. Before the satShl/satAdd hardening the shift
    // wrapped to a tiny (or zero) wait, so the CE spun through its
    // retries in simulated microseconds and the run finished Faulted
    // as if the backoff were small. With saturation the retry waits
    // pin near the tick ceiling: the CE is still waiting when the
    // event budget runs out, and the run surfaces as EventLimit.
    core::RunOptions o;
    o.faults.push_back(parseFaultSpec("module:7:stuck"));
    o.gmTimeout = 100;
    o.gmRetryBackoff = Tick(1) << 60;
    o.gmMaxRetries = 6;
    o.eventLimit = 200'000;

    core::RunResult r;
    ASSERT_NO_THROW(r = core::runExperiment(gmFaultApp(), 8, o));
    EXPECT_EQ(r.status, sim::RunStatus::EventLimit);
    EXPECT_GE(r.faultLog.count(fault::FaultKind::access_timeout), 1u);
    // No retry sequence may complete: a wrapped wait would race
    // through all 6 attempts and take the degraded fallback.
    EXPECT_EQ(r.faultLog.count(fault::FaultKind::access_abandoned), 0u);
    EXPECT_EQ(r.accessesDegraded, 0u);

    // The clamped schedule is deterministic.
    core::RunResult r2;
    ASSERT_NO_THROW(r2 = core::runExperiment(gmFaultApp(), 8, o));
    EXPECT_EQ(r.ct, r2.ct);
    EXPECT_EQ(r.eventsExecuted, r2.eventsExecuted);
    EXPECT_EQ(r.faultLog.events().size(), r2.faultLog.events().size());
}

TEST(BackoffOverflow, MaxRetriesBeyondShiftWidthRejected)
{
    core::RunOptions o;
    o.gmTimeout = 100;
    o.gmMaxRetries = 40; // backoff doubling would exceed 64 bits
    EXPECT_THROW(core::runExperiment(gmFaultApp(), 8, o),
                 sim::ConfigError);
}

// ---------------------------------------------------------------
// Network-level contended replay
// ---------------------------------------------------------------

/** Two identical machines' networks, one with the fast path off. */
struct TwinNets
{
    mem::AddressMap map{32, 4};
    mem::GlobalMemory gmemA{map};
    mem::GlobalMemory gmemB{map};
    net::Network fast{4, 8, gmemA};
    net::Network slow{4, 8, gmemB};

    TwinNets() { slow.setFastPath(false); }
};

TEST(FastPathNetwork, ContendedConvoyRepliesBitIdentical)
{
    // Drive the same convoy-shaped script through both networks:
    // several CEs issue the same burst shape back to back, so later
    // issues see non-zero queue offsets — the contended patterns, not
    // just the idle one, must replay exactly.
    TwinNets t;
    for (int round = 0; round < 64; ++round) {
        const Tick base = static_cast<Tick>(round) * 40;
        for (int ce = 0; ce < 4; ++ce) {
            const auto a =
                t.fast.burst(base, ce % 2, ce, 16 * ce, 32);
            const auto b =
                t.slow.burst(base, ce % 2, ce, 16 * ce, 32);
            ASSERT_EQ(a.complete, b.complete)
                << "round " << round << " ce " << ce;
            ASSERT_EQ(a.unloaded, b.unloaded);
        }
    }
    // Mix in contended RMWs against one hot word.
    for (int i = 0; i < 64; ++i) {
        const Tick when = 2000 + static_cast<Tick>(i) * 3;
        const auto inc = [](std::uint64_t v) { return v + 1; };
        const auto a = t.fast.rmw(when, 0, i % 8, 5, inc);
        const auto b = t.slow.rmw(when, 0, i % 8, 5, inc);
        ASSERT_EQ(a.complete, b.complete) << "rmw " << i;
        ASSERT_EQ(a.oldValue, b.oldValue);
    }
    EXPECT_EQ(t.gmemA.peek(5), t.gmemB.peek(5));
    EXPECT_EQ(t.fast.totalWaitTicks(), t.slow.totalWaitTicks());
    // The convoy repeats the same few queue states, so the replay
    // must actually have engaged (and on contended vectors, not
    // merely the idle machine).
    EXPECT_GT(t.fast.fastStats().hits(), 0u);
    EXPECT_GT(t.fast.fastPatterns(), 0u);
    EXPECT_EQ(t.slow.fastStats().hits(), 0u);
}

TEST(FastPathNetwork, DontCareOffsetsCollapseOntoFewPatterns)
{
    // Issue burst pairs at a sweep of spacings d. For d past the
    // shared ports' residual service but before their horizons fully
    // drain, the second burst sees offsets that are non-zero yet
    // provably harmless (each at or below the shape's idle first
    // arrival at that server). Canonicalization zeroes them before
    // the cache lookup, so that whole band of spacings lands on the
    // same canonical pattern instead of learning one per spacing —
    // while staying bit-identical to the slow path.
    TwinNets t;
    unsigned rounds = 0;
    for (Tick d = 30; d < 70; ++d, ++rounds) {
        // Each spacing twice: patterns build on the second sighting.
        for (int rep = 0; rep < 2; ++rep) {
            const Tick base = (d * 2 + static_cast<Tick>(rep)) * 100000;
            const auto a0 = t.fast.burst(base, 0, 0, 0, 32);
            const auto b0 = t.slow.burst(base, 0, 0, 0, 32);
            ASSERT_EQ(a0.complete, b0.complete) << "lead, spacing " << d;
            const auto a1 = t.fast.burst(base + d, 0, 1, 0, 32);
            const auto b1 = t.slow.burst(base + d, 0, 1, 0, 32);
            ASSERT_EQ(a1.complete, b1.complete) << "spacing " << d;
            ASSERT_EQ(a1.unloaded, b1.unloaded);
        }
    }
    EXPECT_EQ(t.fast.totalWaitTicks(), t.slow.totalWaitTicks());
    EXPECT_GT(t.fast.fastStats().hits(), 0u);
    // Without canonicalization every spacing whose residuals had not
    // fully drained would be a distinct learned pattern (~one per
    // spacing). With it, the harmless band collapses onto the idle
    // vector: far fewer patterns than spacings swept.
    EXPECT_LT(t.fast.fastPatterns(), rounds / 2);
}

TEST(FastPathNetwork, DisabledPathReportsOnlyMisses)
{
    TwinNets t;
    t.fast.setFastPath(false);
    for (int i = 0; i < 8; ++i)
        t.fast.burst(0, 0, 0, 0, 16);
    EXPECT_EQ(t.fast.fastStats().hits(), 0u);
    EXPECT_EQ(t.fast.fastStats().misses(), 8u);
}

} // namespace
