/**
 * @file
 * Tests for the measurement facilities: the cedarhpm trace and the
 * statfx concurrency monitor.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "hpm/statfx.hh"
#include "hpm/trace.hh"
#include "obs/telemetry.hh"
#include "sim/error.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace cedar;
using hpm::EventId;

/** Publish one ce_state edge, as the CEs do through obs::Tracer. */
void
publishEdge(obs::TelemetryBus &bus, sim::Tick when, int ce, int cluster,
            bool active)
{
    obs::TelemetryEvent e;
    e.kind = obs::EventKind::ce_state;
    e.when = when;
    e.ce = ce;
    e.res = cluster;
    e.flags = active ? obs::TelemetryEvent::flag_active : 0;
    bus.publish(e);
}

TEST(Trace, RecordsEventIdTimestampAndProcessor)
{
    hpm::Trace t;
    t.post(1234, 7, EventId::iter_start, 42);
    ASSERT_EQ(t.records().size(), 1u);
    const auto &r = t.records()[0];
    EXPECT_EQ(r.when, 1234u);
    EXPECT_EQ(r.ce, 7);
    EXPECT_EQ(r.id(), EventId::iter_start);
    EXPECT_EQ(r.arg, 42u);
}

TEST(Trace, DisabledTraceRecordsNothing)
{
    hpm::Trace t;
    t.setEnabled(false);
    t.post(1, 0, EventId::iter_start);
    EXPECT_TRUE(t.records().empty());
}

TEST(Trace, FullBufferDropsAndCounts)
{
    hpm::Trace t(4);
    for (int i = 0; i < 10; ++i)
        t.post(i, 0, EventId::iter_start);
    EXPECT_EQ(t.records().size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
}

TEST(Trace, FileRoundTrip)
{
    hpm::Trace t;
    for (int i = 0; i < 100; ++i)
        t.post(i * 10, i % 32, EventId::pickup_enter, i);
    const std::string path = "/tmp/cedar_trace_test.bin";
    t.writeFile(path);
    const auto back = hpm::Trace::readFile(path);
    ASSERT_EQ(back.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(back[i].when, static_cast<sim::Tick>(i * 10));
        EXPECT_EQ(back[i].arg, static_cast<std::uint32_t>(i));
    }
    std::remove(path.c_str());
}

TEST(Trace, ReadMissingFileThrows)
{
    EXPECT_THROW(hpm::Trace::readFile("/tmp/definitely_not_there.bin"),
                 std::runtime_error);
}

TEST(Trace, ReadRejectsBadMagic)
{
    const std::string path = "/tmp/cedar_test_badmagic.chpm";
    {
        std::ofstream f(path, std::ios::binary);
        f << "notchpm!restoffile";
    }
    EXPECT_THROW(hpm::Trace::readFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Trace, ReadRejectsTruncatedHeader)
{
    const std::string path = "/tmp/cedar_test_shortmagic.chpm";
    {
        std::ofstream f(path, std::ios::binary);
        f << "chp"; // shorter than the magic itself
    }
    EXPECT_THROW(hpm::Trace::readFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Trace, ReadRejectsCorruptRecordCount)
{
    const std::string path = "/tmp/cedar_test_badcount.chpm";
    {
        // Valid magic, then a record count far larger than the
        // payload: must throw, not attempt a huge allocation.
        std::ofstream f(path, std::ios::binary);
        f << "chpm0001";
        const std::uint64_t n = ~std::uint64_t(0) / 2;
        f.write(reinterpret_cast<const char *>(&n), sizeof(n));
        f << "tiny";
    }
    EXPECT_THROW(hpm::Trace::readFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Trace, ReadRejectsTruncatedPayload)
{
    const std::string path = "/tmp/cedar_test_truncated.chpm";
    {
        hpm::Trace t;
        for (int i = 0; i < 8; ++i)
            t.post(i, 0, EventId::iter_start,
                   static_cast<std::uint32_t>(i));
        t.writeFile(path);
    }
    // Chop the last few bytes off a valid file.
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    in.close();
    std::string bytes = buf.str();
    bytes.resize(bytes.size() - 5);
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_THROW(hpm::Trace::readFile(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Trace, DumpIsHumanReadable)
{
    hpm::Trace t;
    t.post(5, 1, EventId::barrier_enter, 9);
    std::ostringstream os;
    t.dump(os, 10);
    EXPECT_NE(os.str().find("barrier_enter"), std::string::npos);
}

TEST(Trace, EveryEventHasAName)
{
    for (int i = 0; i < static_cast<int>(EventId::NUM); ++i)
        EXPECT_STRNE(toString(static_cast<EventId>(i)), "?");
}

TEST(Statfx, AveragesActiveCounts)
{
    sim::EventQueue eq;
    obs::TelemetryBus bus;
    // Cluster 0 has 3 active CEs until t=10000 and 1 after; cluster 1
    // stays idle throughout.
    hpm::Statfx fx(eq, bus, 2, 1000);
    for (int ce = 0; ce < 3; ++ce)
        publishEdge(bus, 0, ce, 0, true);
    eq.schedule(10001, [&bus] {
        publishEdge(bus, 10001, 1, 0, false);
        publishEdge(bus, 10001, 2, 0, false);
    });
    fx.start();
    eq.runUntil(20000);
    fx.stop();
    EXPECT_GT(fx.samples(), 15u);
    EXPECT_NEAR(fx.clusterConcurrency(0), 2.0, 0.25);
    EXPECT_DOUBLE_EQ(fx.clusterConcurrency(1), 0.0);
    EXPECT_NEAR(fx.machineConcurrency(), fx.clusterConcurrency(0), 1e-9);
}

TEST(Statfx, TracksEdgesEventDriven)
{
    sim::EventQueue eq;
    obs::TelemetryBus bus;
    hpm::Statfx fx(eq, bus, 2, 100);
    EXPECT_EQ(fx.activeNow(0), 0u);
    publishEdge(bus, 0, 0, 0, true);
    publishEdge(bus, 0, 1, 0, true);
    publishEdge(bus, 0, 8, 1, true);
    EXPECT_EQ(fx.activeNow(0), 2u);
    EXPECT_EQ(fx.activeNow(1), 1u);
    publishEdge(bus, 5, 1, 0, false);
    EXPECT_EQ(fx.activeNow(0), 1u);
    // Out-of-range cluster ids are dropped, not UB.
    publishEdge(bus, 5, 99, 7, true);
    EXPECT_EQ(fx.activeNow(0), 1u);
    EXPECT_EQ(fx.activeNow(1), 1u);
}

TEST(Statfx, SamplePublishesConcurrencyOnBus)
{
    sim::EventQueue eq;
    obs::TelemetryBus bus;
    hpm::Statfx fx(eq, bus, 1, 100);

    struct Sink : obs::TelemetrySink
    {
        std::vector<obs::TelemetryEvent> got;
        void onTelemetry(const obs::TelemetryEvent &e) override
        {
            got.push_back(e);
        }
    } sink;
    bus.subscribe(&sink, {obs::EventKind::sample});

    publishEdge(bus, 0, 0, 0, true);
    publishEdge(bus, 0, 1, 0, true);
    fx.start();
    eq.runUntil(350);
    fx.stop();
    eq.run();
    ASSERT_GE(sink.got.size(), 3u);
    EXPECT_EQ(sink.got[0].kind, obs::EventKind::sample);
    EXPECT_EQ(sink.got[0].id, 2u);
    EXPECT_EQ(sink.got[0].res, 0);
    bus.unsubscribe(&sink);
}

TEST(Statfx, ZeroPeriodThrows)
{
    // A zero period would reschedule sample() at the current tick
    // forever — a livelock the watchdog would abort the run for.
    sim::EventQueue eq;
    obs::TelemetryBus bus;
    EXPECT_THROW(hpm::Statfx(eq, bus, 1, 0), sim::SimError);
}

TEST(Statfx, StartIsIdempotent)
{
    sim::EventQueue eq;
    obs::TelemetryBus bus;
    hpm::Statfx fx(eq, bus, 1, 100);
    publishEdge(bus, 0, 0, 0, true);
    fx.start();
    fx.start(); // must not chain a second sampling loop
    eq.scheduleIn(500, [&fx] { fx.start(); });
    eq.runUntil(1000);
    fx.stop();
    eq.run();
    // One sample every 100 ticks over 1000 ticks, not two or three
    // interleaved loops' worth.
    EXPECT_LE(fx.samples(), 11u);
    EXPECT_GE(fx.samples(), 9u);
}

TEST(Statfx, RestartAfterStopResumesWithoutDuplicates)
{
    sim::EventQueue eq;
    obs::TelemetryBus bus;
    hpm::Statfx fx(eq, bus, 1, 100);
    publishEdge(bus, 0, 0, 0, true);
    fx.start();
    eq.runUntil(500);
    fx.stop();
    // The stop takes effect at the next sample point; restarting
    // while that callback is still queued must not add another.
    fx.start();
    eq.runUntil(1000);
    fx.stop();
    eq.run();
    EXPECT_LE(fx.samples(), 11u);
}

TEST(Statfx, StopsCleanly)
{
    sim::EventQueue eq;
    obs::TelemetryBus bus;
    hpm::Statfx fx(eq, bus, 1, 100);
    publishEdge(bus, 0, 0, 0, true);
    fx.start();
    eq.runUntil(1000);
    fx.stop();
    eq.run();
    const auto n = fx.samples();
    EXPECT_GT(n, 0u);
    EXPECT_TRUE(eq.empty());
}

} // namespace
