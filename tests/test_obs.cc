/**
 * @file
 * Tests for the observability layer: per-resource metrics
 * collection, hot-spot attribution, JSON export determinism and the
 * Chrome trace_event converter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/perfect.hh"
#include "core/experiment.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/resource.hh"
#include "sim/error.hh"

namespace
{

using namespace cedar;

core::RunOptions
quickOpts()
{
    core::RunOptions opts;
    opts.scale = 0.05;
    return opts;
}

// ----- resource classification -----

TEST(Resource, EveryClassHasAName)
{
    for (std::size_t i = 0; i < obs::num_resource_classes; ++i)
        EXPECT_STRNE(obs::toString(static_cast<obs::ResourceClass>(i)),
                     "?");
}

TEST(Resource, BankTagsMapToClasses)
{
    EXPECT_EQ(obs::classFromBank("stage1"),
              obs::ResourceClass::stage1_port);
    EXPECT_EQ(obs::classFromBank("stage2"),
              obs::ResourceClass::stage2_port);
    EXPECT_EQ(obs::classFromBank("returnA"),
              obs::ResourceClass::return_a_port);
    EXPECT_EQ(obs::classFromBank("returnB"),
              obs::ResourceClass::return_b_port);
    EXPECT_THROW(obs::classFromBank("bogus"), sim::SimError);
}

// ----- metrics collection -----

TEST(Metrics, ReportSatisfiesAccountingInvariants)
{
    const auto app = apps::perfectAppByName("FLO52");
    const auto r = core::runExperiment(app, 8, quickOpts());
    const auto &m = r.metrics;

    ASSERT_EQ(m.classes.size(), obs::num_resource_classes);
    ASSERT_FALSE(m.resources.empty());
    EXPECT_EQ(m.elapsed, r.ct);

    // Class aggregates partition the per-resource counters.
    std::uint64_t req = 0;
    sim::Tick wait = 0;
    unsigned resources = 0;
    for (const auto &c : m.classes) {
        req += c.requests;
        wait += c.waitTicks;
        resources += c.resources;
    }
    EXPECT_EQ(req, m.totalRequests);
    EXPECT_EQ(wait, m.totalWaitTicks);
    EXPECT_EQ(resources, m.resources.size());

    // Wait shares are a distribution over the resources.
    double share = 0;
    for (const auto &res : m.resources) {
        EXPECT_GE(res.waitShare, 0.0);
        share += res.waitShare;
    }
    if (m.totalWaitTicks > 0)
        EXPECT_NEAR(share, 1.0, 1e-9);

    // The run really went through the network.
    EXPECT_GT(m.totalRequests, 0u);
    EXPECT_GT(m.perClass(obs::ResourceClass::memory_module).requests,
              0u);
    EXPECT_GE(m.moduleGini, 0.0);
    EXPECT_LE(m.moduleGini, 1.0);

    // The per-class wait histograms saw every module request.
    EXPECT_EQ(m.perClass(obs::ResourceClass::memory_module)
                  .waitHist.count(),
              m.perClass(obs::ResourceClass::memory_module).requests);
}

TEST(Metrics, TopByWaitIsSortedAndBounded)
{
    const auto app = apps::perfectAppByName("FLO52");
    const auto r = core::runExperiment(app, 8, quickOpts());
    const auto top = r.metrics.topByWait(5);
    ASSERT_LE(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].waitTicks, top[i].waitTicks);
    // Asking for more than exists returns every queueing resource
    // (barrier-skew rows are not hot-spot candidates).
    std::size_t queueing = 0;
    for (const auto &res : r.metrics.resources)
        if (obs::isQueueingClass(res.cls))
            ++queueing;
    EXPECT_EQ(r.metrics.topByWait(1u << 20).size(), queueing);
}

TEST(Metrics, XdoallLockWordModuleIsTheHotSpot)
{
    // The paper's Section-6 hot spot: ADM is xdoall-only, so the
    // per-phase iteration-index words concentrate RMW traffic on
    // their modules and the top module's wait share must clearly
    // exceed the across-module mean.
    const auto app = apps::perfectAppByName("ADM");
    core::RunOptions opts;
    opts.scale = 0.3;
    const auto r = core::runExperiment(app, 32, opts);
    const auto top = r.metrics.topByWait(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].cls, obs::ResourceClass::memory_module);

    const auto &mods =
        r.metrics.perClass(obs::ResourceClass::memory_module);
    const double mean_share =
        mods.waitShare / std::max(1u, mods.resources);
    EXPECT_GT(top[0].waitShare, 1.5 * mean_share);
    EXPECT_GT(r.metrics.moduleGini, 0.05);
}

TEST(Metrics, JsonExportIsIdenticalAcrossSweepJobCounts)
{
    // The sweep must be bit-deterministic regardless of the worker
    // count; the metrics JSON document is the strictest observable
    // (it serialises every counter and histogram).
    const auto app = apps::perfectAppByName("FLO52");
    const std::vector<unsigned> procs{1, 4};
    const auto serial = core::runSweep(app, quickOpts(), procs, 1);
    const auto parallel = core::runSweep(app, quickOpts(), procs, 2);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        std::ostringstream a, b;
        serial[i].metrics.writeJson(a);
        parallel[i].metrics.writeJson(b);
        EXPECT_EQ(a.str(), b.str()) << "config " << procs[i];
    }
}

TEST(Metrics, JsonAndHumanReportsAreNonEmpty)
{
    const auto app = apps::perfectAppByName("FLO52");
    const auto r = core::runExperiment(app, 4, quickOpts());
    std::ostringstream js, hu;
    r.metrics.writeJson(js);
    r.metrics.print(hu);
    EXPECT_NE(js.str().find("cedar-metrics-v1"), std::string::npos);
    EXPECT_NE(js.str().find("hot_spots"), std::string::npos);
    EXPECT_NE(hu.str().find("module wait imbalance"),
              std::string::npos);
}

// ----- Chrome trace_event export -----

TEST(ChromeTrace, RejectsNonPositiveClock)
{
    std::ostringstream os;
    EXPECT_THROW(obs::writeChromeTrace(os, {}, 0.0), sim::SimError);
    EXPECT_THROW(obs::writeChromeTrace(os, {}, -1.0), sim::SimError);
}

TEST(ChromeTrace, GoldenDocumentForFixedRecords)
{
    const std::vector<hpm::Record> recs = {
        {0, hpm::packLoopRef(1, 7),
         static_cast<std::uint16_t>(hpm::EventId::xdoall_post), 0},
        {2, 7, static_cast<std::uint16_t>(hpm::EventId::pickup_enter),
         1},
        {10, 7, static_cast<std::uint16_t>(hpm::EventId::pickup_exit),
         1},
        {12, 3, static_cast<std::uint16_t>(hpm::EventId::os_overlay),
         0},
    };
    std::ostringstream ss;
    obs::writeChromeTrace(ss, recs);
    const std::string golden = R"({
  "traceEvents": [
    {
      "name": "process_name",
      "ph": "M",
      "pid": 0,
      "args": {
        "name": "cedar"
      }
    },
    {
      "name": "thread_name",
      "ph": "M",
      "pid": 0,
      "tid": 0,
      "args": {
        "name": "CE 0"
      }
    },
    {
      "name": "thread_name",
      "ph": "M",
      "pid": 0,
      "tid": 1,
      "args": {
        "name": "CE 1"
      }
    },
    {
      "name": "xdoall_post",
      "cat": "rtl",
      "ph": "i",
      "ts": 0,
      "pid": 0,
      "tid": 0,
      "s": "t",
      "args": {
        "arg": 16777223
      }
    },
    {
      "name": "pickup",
      "cat": "rtl",
      "ph": "B",
      "ts": 0.1,
      "pid": 0,
      "tid": 1,
      "args": {
        "arg": 7
      }
    },
    {
      "name": "pickup",
      "cat": "rtl",
      "ph": "E",
      "ts": 0.5,
      "pid": 0,
      "tid": 1,
      "args": {
        "arg": 7
      }
    },
    {
      "name": "os_overlay",
      "cat": "os",
      "ph": "i",
      "ts": 0.6000000000000001,
      "pid": 0,
      "tid": 0,
      "s": "t",
      "args": {
        "arg": 3
      }
    }
  ],
  "displayTimeUnit": "ms"
}
)";
    EXPECT_EQ(ss.str(), golden);
}

TEST(ChromeTrace, ConvertsAnOffloadedTraceFile)
{
    const std::string dir = ::testing::TempDir();
    const std::string chpm = dir + "/obs_test.chpm";
    const std::string json = dir + "/obs_test.json";

    hpm::Trace t;
    t.post(100, 0, hpm::EventId::serial_enter, 1);
    t.post(900, 0, hpm::EventId::serial_exit, 1);
    t.writeFile(chpm);

    obs::convertTraceFile(chpm, json);
    std::ifstream f(json);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_NE(ss.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(ss.str().find("\"serial\""), std::string::npos);

    std::remove(chpm.c_str());
    std::remove(json.c_str());
}

} // namespace
