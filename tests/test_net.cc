/**
 * @file
 * Unit and property tests for the two-stage shuffle-exchange
 * network: routing, unloaded latency, pipelining and contention.
 */

#include <gtest/gtest.h>

#include "mem/global_memory.hh"
#include "net/network.hh"

namespace
{

using namespace cedar;
using cedar::sim::Tick;

struct NetFixture : ::testing::Test
{
    mem::AddressMap map{32, 4};
    mem::GlobalMemory gmem{map};
    net::Network net{4, 8, gmem};
};

TEST_F(NetFixture, UnloadedLatencyMatchesFormula)
{
    // 6 hops, 4 port services of len words, module service.
    EXPECT_EQ(net.unloadedLatency(1),
              6 * net::Network::hop_latency + 4 * 1 +
                  mem::GlobalMemory::word_service);
    EXPECT_EQ(net.unloadedLatency(4),
              6 * net::Network::hop_latency + 4 * 4 +
                  mem::GlobalMemory::word_service);
    EXPECT_EQ(net.unloadedLatency(1, true),
              6 * net::Network::hop_latency + 4 * 1 +
                  mem::GlobalMemory::rmw_service);
}

TEST_F(NetFixture, SingleChunkSeesUnloadedLatency)
{
    const auto res = net.chunkAccess(1000, 0, 0, mem::Chunk{0, 4});
    EXPECT_EQ(res.complete - 1000, res.unloaded);
    EXPECT_EQ(res.queueing(1000), 0u);
}

TEST_F(NetFixture, SameGroupSameClusterContends)
{
    // Two CEs of one cluster sending to the same group share the
    // stage-1 output port.
    const auto a = net.chunkAccess(0, 0, 0, mem::Chunk{0, 4});
    const auto b = net.chunkAccess(0, 0, 1, mem::Chunk{64, 4});
    EXPECT_GT(b.complete, a.complete);
    EXPECT_GT(b.queueing(0), 0u);
}

TEST_F(NetFixture, DifferentGroupsDoNotContend)
{
    const auto a = net.chunkAccess(0, 0, 0, mem::Chunk{0, 4});
    const auto b = net.chunkAccess(0, 0, 1, mem::Chunk{4, 4});
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(b.queueing(0), 0u);
}

TEST_F(NetFixture, CrossClusterMeetsAtStage2AndMemory)
{
    // Different clusters to the same 4 modules: stage-1 is private,
    // stage-2 input ports are per cluster, but the modules are
    // shared, so the second transfer queues there.
    const auto a = net.chunkAccess(0, 0, 0, mem::Chunk{0, 4});
    const auto b = net.chunkAccess(0, 1, 0, mem::Chunk{32, 4});
    EXPECT_GE(b.complete, a.complete);
    EXPECT_GT(b.queueing(0), 0u);
}

TEST_F(NetFixture, CrossClusterDifferentModulesIndependent)
{
    const auto a = net.chunkAccess(0, 0, 0, mem::Chunk{0, 4});
    const auto b = net.chunkAccess(0, 1, 0, mem::Chunk{4, 4});
    EXPECT_EQ(a.complete, b.complete);
}

TEST_F(NetFixture, RmwReturnsPreviousValue)
{
    auto r1 = net.rmw(0, 0, 0, 5, [](std::uint64_t v) { return v + 3; });
    auto r2 = net.rmw(0, 1, 0, 5, [](std::uint64_t v) { return v + 4; });
    EXPECT_EQ(r1.oldValue, 0u);
    EXPECT_EQ(r2.oldValue, 3u);
    EXPECT_EQ(gmem.peek(5), 7u);
}

TEST_F(NetFixture, RmwHotSpotSerializes)
{
    // Many CEs hammering one lock word: completions spread out by
    // at least the module's RMW service time each.
    Tick prev = 0;
    for (int ce = 0; ce < 8; ++ce) {
        const auto r =
            net.rmw(0, 0, ce, 17, [](std::uint64_t v) { return v + 1; });
        if (ce > 0) {
            EXPECT_GE(r.complete, prev + mem::GlobalMemory::rmw_service);
        }
        prev = r.complete;
    }
    EXPECT_EQ(gmem.peek(17), 8u);
}

TEST_F(NetFixture, WaitAccountingAggregates)
{
    EXPECT_EQ(net.totalWaitTicks(), 0u);
    net.chunkAccess(0, 0, 0, mem::Chunk{0, 4});
    net.chunkAccess(0, 0, 1, mem::Chunk{64, 4});
    EXPECT_GT(net.totalWaitTicks(), 0u);
    net.reset();
    gmem.reset();
    EXPECT_EQ(net.totalWaitTicks(), 0u);
}

TEST_F(NetFixture, ReturnPathIsPerCe)
{
    // Two CEs of a cluster to *different* groups only share their
    // cluster's return-B switch, but on distinct ports: no wait.
    const auto a = net.chunkAccess(0, 2, 3, mem::Chunk{0, 4});
    const auto b = net.chunkAccess(0, 2, 4, mem::Chunk{4, 4});
    EXPECT_EQ(a.complete, b.complete);
}

TEST_F(NetFixture, SaturationThroughputBoundedByMemory)
{
    // Offered load of 32 CEs streaming simultaneously: aggregate
    // throughput cannot exceed 8 words/cycle (32 modules at 1/4
    // word per cycle each).
    const unsigned words_per_ce = 256;
    Tick last = 0;
    for (int cl = 0; cl < 4; ++cl) {
        for (int ce = 0; ce < 8; ++ce) {
            sim::Addr base =
                static_cast<sim::Addr>(cl * 8 + ce) * words_per_ce;
            Tick issue = 0;
            for (const auto &c : map.chunkify(base, words_per_ce)) {
                const auto r = net.chunkAccess(issue, cl, ce, c);
                last = std::max(last, r.complete);
                issue += c.len;
            }
        }
    }
    const double total_words = 32.0 * words_per_ce;
    const double min_time = total_words / 8.0;
    EXPECT_GE(static_cast<double>(last), min_time);
}

/** Property over geometry: every chunk access completes after its
 *  issue plus the unloaded latency, never before. */
class NetLatencyProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(NetLatencyProperty, NeverFasterThanUnloaded)
{
    mem::AddressMap map{32, 4};
    mem::GlobalMemory gmem(map);
    net::Network net(4, 8, gmem);
    const auto [cluster, ce, addr] = GetParam();
    const auto r = net.chunkAccess(
        50, cluster, ce,
        mem::Chunk{static_cast<sim::Addr>(addr), 2});
    EXPECT_GE(r.complete - 50, r.unloaded);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, NetLatencyProperty,
    ::testing::Combine(::testing::Values(0, 1, 3),
                       ::testing::Values(0, 4, 7),
                       ::testing::Values(0, 5, 30, 63)));

TEST(Crossbar, PortStatsIndependent)
{
    net::Crossbar xb("x", 4);
    xb.port(0).serve(0, 10);
    xb.port(1).serve(0, 5);
    EXPECT_EQ(xb.totalBusyTicks(), 15u);
    EXPECT_EQ(xb.totalWaitTicks(), 0u);
    xb.reset();
    EXPECT_EQ(xb.totalBusyTicks(), 0u);
}

} // namespace
