/**
 * @file
 * Tests for the declarative scenario layer: the text format parser
 * and its diagnostics, golden round-tripping through
 * formatScenario, run-option validation, the CedarConfig-first
 * experiment overloads (bit-identical at the paper points), and an
 * arbitrary non-paper machine geometry running to completion with
 * conserved accounting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/perfect.hh"
#include "core/contention.hh"
#include "core/experiment.hh"
#include "core/scenario.hh"
#include "hw/config.hh"
#include "obs/metrics.hh"
#include "sim/error.hh"

namespace
{

using namespace cedar;
using sim::ConfigError;

const char *const kGolden = R"(# golden scenario
[scenario]
name = golden

[machine]
clusters = 2
ces_per_cluster = 4
modules = 16
group_size = 4
seed = 9

[costs]
pickup_local = 90
ctx_rtl_coop = true

[run]
scale = 0.25
gm_timeout = 30000

[faults]
inject = module:3:degrade:2x

[workload.inline]
app golden-app
steps 2
serial compute=9000 pages=1
xdoall iters=48 compute=700 words=24
)";

/** Fast-running app for the experiment-level tests. */
apps::AppModel
tinyApp()
{
    apps::AppModel app;
    app.name = "scn-test";
    app.steps = 2;
    apps::SerialSpec s;
    s.compute = 6000;
    s.pages = 1;
    app.phases.push_back(s);
    apps::LoopSpec x;
    x.kind = apps::LoopKind::xdoall;
    x.outerIters = 40;
    x.computePerIter = 700;
    x.words = 32;
    x.burstLen = 32;
    x.regionWords = 1 << 14;
    app.phases.push_back(x);
    return app;
}

TEST(ScenarioParse, ReadsEverySection)
{
    const auto spec = core::parseScenarioString(kGolden);
    EXPECT_EQ(spec.name, "golden");
    EXPECT_EQ(spec.config.nClusters, 2u);
    EXPECT_EQ(spec.config.cesPerCluster, 4u);
    EXPECT_EQ(spec.config.nModules, 16u);
    EXPECT_EQ(spec.config.groupSize, 4u);
    EXPECT_EQ(spec.config.seed, 9u);
    EXPECT_EQ(spec.options.seed, 9u);
    EXPECT_EQ(spec.config.costs.pickup_local, 90u);
    EXPECT_TRUE(spec.config.costs.ctx_rtl_coop);
    EXPECT_DOUBLE_EQ(spec.options.scale, 0.25);
    EXPECT_EQ(spec.options.gmTimeout, 30000u);
    ASSERT_EQ(spec.options.faults.size(), 1u);
    EXPECT_EQ(spec.options.faults[0].text, "module:3:degrade:2x");
    ASSERT_TRUE(spec.workload.has_value());
    EXPECT_EQ(spec.workload->name, "golden-app");
    EXPECT_EQ(spec.workload->steps, 2u);
    EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioParse, GoldenRoundTrip)
{
    const auto a = core::parseScenarioString(kGolden);
    const auto b = core::parseScenarioString(core::formatScenario(a));
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.config.nClusters, b.config.nClusters);
    EXPECT_EQ(a.config.cesPerCluster, b.config.cesPerCluster);
    EXPECT_EQ(a.config.nModules, b.config.nModules);
    EXPECT_EQ(a.config.groupSize, b.config.groupSize);
    EXPECT_EQ(a.config.seed, b.config.seed);
    EXPECT_EQ(a.config.costs.pickup_local, b.config.costs.pickup_local);
    EXPECT_EQ(a.config.costs.ctx_rtl_coop, b.config.costs.ctx_rtl_coop);
    EXPECT_DOUBLE_EQ(a.options.scale, b.options.scale);
    EXPECT_EQ(a.options.gmTimeout, b.options.gmTimeout);
    ASSERT_EQ(b.options.faults.size(), 1u);
    EXPECT_EQ(a.options.faults[0].text, b.options.faults[0].text);
    // The inline workload survives (formatScenario re-inlines it).
    EXPECT_EQ(core::formatScenario(a), core::formatScenario(b));
    const auto app_a = a.resolveApp();
    const auto app_b = b.resolveApp();
    EXPECT_EQ(app_a.name, app_b.name);
    EXPECT_EQ(app_a.phases.size(), app_b.phases.size());
}

TEST(ScenarioParse, ProcsShorthandExpandsPaperShape)
{
    const auto spec = core::parseScenarioString(
        "[machine]\nprocs = 16\n[workload]\napp = ADM\n");
    EXPECT_EQ(spec.config.nClusters, 2u);
    EXPECT_EQ(spec.config.cesPerCluster, 8u);
    EXPECT_TRUE(spec.config.isPaperPoint());
}

TEST(ScenarioParse, FileLoadDefaultsNameToStem)
{
    const std::string path = "scenario_stem_test.scn";
    {
        std::ofstream out(path);
        out << "[machine]\nprocs = 8\n[workload]\napp = ADM\n";
    }
    const auto spec = core::parseScenarioFile(path);
    EXPECT_EQ(spec.name, "scenario_stem_test");
    std::remove(path.c_str());
}

TEST(ScenarioParse, MissingFileFails)
{
    EXPECT_THROW(core::parseScenarioFile("no/such/file.scn"),
                 ConfigError);
}

/** EXPECT that parsing @p text throws a ConfigError mentioning
 *  @p needle (so the diagnostic stays actionable). */
void
expectDiagnostic(const std::string &text, const std::string &needle)
{
    try {
        core::parseScenarioString(text);
        FAIL() << "expected ConfigError containing '" << needle << "'";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual message: " << e.what();
    }
}

TEST(ScenarioDiagnostics, UnknownSection)
{
    expectDiagnostic("[nonsense]\n", "unknown section");
}

TEST(ScenarioDiagnostics, UnterminatedSectionHeader)
{
    expectDiagnostic("[machine\n", "unterminated section header");
}

TEST(ScenarioDiagnostics, KeyBeforeAnySection)
{
    expectDiagnostic("procs = 8\n", "before any [section]");
}

TEST(ScenarioDiagnostics, MissingEqualsSign)
{
    expectDiagnostic("[machine]\nprocs 8\n", "expected key = value");
}

TEST(ScenarioDiagnostics, UnknownMachineKey)
{
    expectDiagnostic("[machine]\ncores = 8\n",
                     "unknown key 'cores' in [machine]");
}

TEST(ScenarioDiagnostics, UnknownCostKey)
{
    expectDiagnostic("[costs]\nwarp_speed = 9\n",
                     "unknown key 'warp_speed' in [costs]");
}

TEST(ScenarioDiagnostics, UnknownRunKey)
{
    expectDiagnostic("[run]\nturbo = yes\n",
                     "unknown key 'turbo' in [run]");
}

TEST(ScenarioDiagnostics, BadNumber)
{
    expectDiagnostic("[machine]\nclusters = two\n", "bad number");
}

TEST(ScenarioDiagnostics, FractionalCount)
{
    expectDiagnostic("[machine]\nclusters = 2.5\n",
                     "not a whole number");
}

TEST(ScenarioDiagnostics, BadBoolean)
{
    expectDiagnostic("[run]\ncollect_trace = maybe\n",
                     "not a boolean");
}

TEST(ScenarioDiagnostics, NonPaperProcsShorthand)
{
    expectDiagnostic("[machine]\nprocs = 7\n", "no paper point");
}

TEST(ScenarioDiagnostics, ProcsAfterExplicitShape)
{
    expectDiagnostic("[machine]\nclusters = 2\nprocs = 8\n",
                     "paper-point shorthand");
}

TEST(ScenarioDiagnostics, ExplicitShapeAfterProcs)
{
    expectDiagnostic("[machine]\nprocs = 8\nclusters = 2\n",
                     "cannot override procs");
}

TEST(ScenarioDiagnostics, NoWorkload)
{
    expectDiagnostic("[machine]\nprocs = 8\n", "no workload");
}

TEST(ScenarioDiagnostics, MultipleWorkloadSources)
{
    expectDiagnostic("[workload]\napp = ADM\n"
                     "[workload.inline]\napp x\nsteps 1\n"
                     "serial compute=100\n",
                     "more than one workload source");
}

TEST(ScenarioDiagnostics, BadFaultSpec)
{
    expectDiagnostic("[faults]\ninject = module:7:melt\n"
                     "[workload]\napp = ADM\n",
                     "line 2: fault spec");
}

TEST(ScenarioDiagnostics, BadInlineWorkload)
{
    expectDiagnostic("[workload.inline]\nserial compute=nope\n",
                     "[workload.inline] starting line 2");
}

TEST(ScenarioDiagnostics, DiagnosticsCarryLineNumbers)
{
    expectDiagnostic("[machine]\nprocs = 8\nbogus = 1\n", "line 3");
}

TEST(ScenarioDiagnostics, UnknownAppSurfacesAtResolve)
{
    const auto spec = core::parseScenarioString(
        "[machine]\nprocs = 8\n[workload]\napp = BOGUS\n");
    EXPECT_THROW(spec.resolveApp(), ConfigError);
}

TEST(RunOptionValidation, RejectsBadKnobs)
{
    auto bad = [](auto &&tweak) {
        core::RunOptions o;
        tweak(o);
        EXPECT_THROW(core::validateRunOptions(o), ConfigError);
    };
    bad([](core::RunOptions &o) { o.scale = 0.0; });
    bad([](core::RunOptions &o) { o.scale = -0.5; });
    bad([](core::RunOptions &o) { o.scale = 1.5; });
    bad([](core::RunOptions &o) { o.scale = 0.0 / 0.0; });
    bad([](core::RunOptions &o) { o.eventLimit = 0; });
    bad([](core::RunOptions &o) { o.watchdogEvents = 0; });
    bad([](core::RunOptions &o) { o.gmMaxRetries = 31; });
    bad([](core::RunOptions &o) {
        o.gmTimeout = 1000;
        o.gmRetryBackoff = 0;
    });
    EXPECT_NO_THROW(core::validateRunOptions(core::RunOptions{}));
}

TEST(RunOptionValidation, RunExperimentRejectsBadOptions)
{
    core::RunOptions o;
    o.scale = 0.0;
    EXPECT_THROW(core::runExperiment(tinyApp(), 8, o), ConfigError);
}

TEST(ConfigOverloads, PaperPointsBitIdentical)
{
    // The CedarConfig-first path must reproduce the historical
    // nprocs path exactly at all five paper points.
    core::RunOptions o;
    o.scale = 0.05;
    const auto by_procs = core::runSweep(tinyApp(), o);
    const auto by_config =
        core::runSweep(tinyApp(), o, core::paperConfigs());
    ASSERT_EQ(by_procs.size(), by_config.size());
    for (std::size_t i = 0; i < by_procs.size(); ++i) {
        EXPECT_EQ(by_procs[i].ct, by_config[i].ct) << "point " << i;
        EXPECT_EQ(by_procs[i].eventsExecuted,
                  by_config[i].eventsExecuted);
        EXPECT_EQ(by_procs[i].globalWords, by_config[i].globalWords);
        EXPECT_EQ(by_procs[i].nprocs, by_config[i].nprocs);
    }
}

TEST(ConfigOverloads, LabelsForPaperAndArbitraryShapes)
{
    EXPECT_EQ(hw::CedarConfig::withProcs(32).label(), "32 proc");
    hw::CedarConfig cfg;
    cfg.nClusters = 2;
    cfg.cesPerCluster = 4;
    cfg.nModules = 16;
    cfg.groupSize = 4;
    EXPECT_FALSE(cfg.isPaperPoint());
    EXPECT_EQ(cfg.label(), "2x4 CEs");
    // A paper shape over a non-paper memory system is not a paper
    // point either.
    auto odd = hw::CedarConfig::withProcs(8);
    odd.nModules = 16;
    EXPECT_FALSE(odd.isPaperPoint());
    EXPECT_EQ(odd.label(), "1x8 CEs");
}

TEST(ArbitraryGeometry, RunsToCompletionWithInvariants)
{
    // The ISSUE acceptance geometry: 2 clusters x 4 CEs in front of
    // 16 modules in groups of 4 (4 stage-2 switches).
    const auto spec = core::parseScenarioString(
        "[machine]\n"
        "clusters = 2\nces_per_cluster = 4\n"
        "modules = 16\ngroup_size = 4\n"
        "[run]\nscale = 0.5\n"
        "[workload]\napp = ADM\n");
    const auto r = core::runScenario(spec);

    EXPECT_EQ(r.status, sim::RunStatus::Completed);
    EXPECT_EQ(r.nprocs, 8u);
    EXPECT_EQ(r.nClusters, 2u);
    EXPECT_EQ(r.cesPerCluster, 4u);
    ASSERT_EQ(r.ceAcct.size(), 8u);
    ASSERT_EQ(r.clusterAcct.size(), 2u);
    EXPECT_GT(r.ct, 0u);
    EXPECT_GT(r.globalWords, 0u);
    EXPECT_GT(r.machineConcurrency, 1.0);
    EXPECT_LE(r.machineConcurrency, 8.0);

    // Accounting conservation: every CE's categories sum to ~CT.
    for (const auto &a : r.ceAcct) {
        sim::Tick total = 0;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(os::TimeCat::NUM); ++i)
            total += a.cat[i];
        EXPECT_GE(total, r.ct);
        EXPECT_LE(total, r.ct + 80000u);
    }

    // The metrics report reflects the configured geometry: 16
    // modules, and a well-formed wait-share distribution.
    const auto &mem =
        r.metrics.perClass(obs::ResourceClass::memory_module);
    EXPECT_EQ(mem.resources, 16u);
    double share = 0;
    unsigned modules_seen = 0;
    for (const auto &res : r.metrics.resources) {
        EXPECT_GE(res.waitShare, 0.0);
        EXPECT_LE(res.waitShare, 1.0);
        share += res.waitShare;
        if (res.cls == obs::ResourceClass::memory_module)
            ++modules_seen;
    }
    EXPECT_EQ(modules_seen, 16u);
    if (r.metrics.totalWaitTicks > 0) {
        EXPECT_NEAR(share, 1.0, 1e-6);
    }
    EXPECT_GE(r.metrics.moduleGini, 0.0);
    EXPECT_LE(r.metrics.moduleGini, 1.0);
    EXPECT_GE(core::groundTruthContentionPct(r), 0.0);
}

TEST(ArbitraryGeometry, DegenerateGeometryRejected)
{
    const auto spec = core::parseScenarioString(
        "[machine]\nclusters = 2\nces_per_cluster = 4\n"
        "modules = 10\ngroup_size = 4\n"
        "[workload]\napp = ADM\n");
    EXPECT_THROW(core::runScenario(spec), ConfigError);
}

TEST(ScenarioRun, MatchesDirectExperiment)
{
    // runScenario is a pure composition of resolveApp + the
    // CedarConfig overload: same bits as calling them directly.
    const auto spec = core::parseScenarioString(
        "[machine]\nprocs = 8\nseed = 5\n"
        "[run]\nscale = 0.1\n"
        "[workload]\napp = ADM\n");
    const auto via_scenario = core::runScenario(spec);
    const auto direct = core::runExperiment(
        apps::perfectAppByName("ADM"), spec.config, spec.options);
    EXPECT_EQ(via_scenario.ct, direct.ct);
    EXPECT_EQ(via_scenario.eventsExecuted, direct.eventsExecuted);
    EXPECT_EQ(via_scenario.globalWords, direct.globalWords);
}

} // namespace
