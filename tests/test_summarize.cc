/**
 * @file
 * Tests for the cross-study analytics engine (core/summarize.hh):
 * merging study directories into a cedar-summary-v1 document, the
 * shard-union and kill-mid-study --resume byte-identity guarantees,
 * directory-order invariance, dedup-by-hash of overlapping studies,
 * the hash-conflict refusal, baseline regression deltas, and the
 * failure ledger.
 *
 * The fixtures drive a real 12-point study grid (2 machine shapes x
 * 3 seeds x 2 scales over the tiny inline app) through the study
 * engine, so the summaries under test are built from genuine
 * manifest + artifact trees.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hh"
#include "core/scenario.hh"
#include "core/study.hh"
#include "core/summarize.hh"
#include "sim/error.hh"

namespace
{

using namespace cedar;
namespace fs = std::filesystem;
using cedar::tools::JsonValue;
using sim::ConfigError;

/** Fresh empty directory under the test temp root, removed on exit. */
class TempDir
{
  public:
    TempDir()
    {
        static int counter = 0;
        path_ = fs::path(::testing::TempDir()) /
                ("cedar_summarize_" + std::to_string(::getpid()) +
                 "_" + std::to_string(counter++));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }
    fs::path operator/(const std::string &leaf) const
    {
        return path_ / leaf;
    }

  private:
    fs::path path_;
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing file: " << p;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const fs::path &p, const std::string &content)
{
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os << content;
    ASSERT_TRUE(os.good()) << "cannot write " << p;
}

/** A fast-running scenario file body. @p extra appends raw text. */
std::string
tinyScenario(const std::string &name, const std::string &extra = "")
{
    return "[scenario]\nname = " + name +
           "\n\n[machine]\nclusters = 1\nces_per_cluster = 2\n"
           "modules = 4\ngroup_size = 2\nseed = 3\n\n"
           "[workload.inline]\napp tiny\nsteps 1\n"
           "serial compute=2000 pages=1\n"
           "xdoall iters=8 compute=300 words=8\n\n"
           "[run]\nscale = 1.0\n" +
           extra;
}

std::string
writeScn(const TempDir &dir, const std::string &file,
         const std::string &content)
{
    const fs::path p = dir / file;
    spit(p, content);
    return p.string();
}

core::StudyOptions
optsFor(const TempDir &out)
{
    core::StudyOptions o;
    o.outDir = out.str();
    return o;
}

/** The 12-point acceptance grid: 2 shapes x 3 seeds x 2 scales. */
std::vector<core::StudyEntry>
gridEntries(const TempDir &scns)
{
    const auto base =
        writeScn(scns, "base.scn", tinyScenario("grid"));
    const std::vector<core::GridAxis> axes = {
        core::parseGridAxis("machine.ces_per_cluster=2,4"),
        core::parseGridAxis("machine.seed=1,2,3"),
        core::parseGridAxis("run.scale=0.5,1.0"),
    };
    auto entries = core::expandScenarioGrid(base, axes);
    EXPECT_EQ(entries.size(), 12u);
    return entries;
}

/** Summary rendered both ways for byte-comparison. */
std::pair<std::string, std::string>
render(const std::vector<std::string> &dirs,
       const std::string &baseline = "")
{
    core::SummarizeOptions o;
    o.dirs = dirs;
    o.baselineDir = baseline;
    const core::Summary s = core::buildSummary(o);
    std::ostringstream json, md;
    core::writeSummaryJson(json, s);
    core::writeSummaryMarkdown(md, s);
    return {json.str(), md.str()};
}

// ------------------------------------------------------------------
// The 12-point grid acceptance summary
// ------------------------------------------------------------------

TEST(Summarize, TwelvePointGridProducesFullSummary)
{
    TempDir scns, full;
    const auto entries = gridEntries(scns);
    const auto rep = core::runStudy(entries, optsFor(full));
    ASSERT_EQ(rep.exitCode(), 0);

    const auto [json, md] = render({full.str()});
    const JsonValue doc = JsonValue::parse(json);
    EXPECT_EQ(doc.at("schema").asString(), "cedar-summary-v1");
    EXPECT_EQ(doc.at("counts").at("scenarios").asNumber(), 12);
    EXPECT_EQ(doc.at("counts").at("failures").asNumber(), 0);
    EXPECT_EQ(doc.at("counts").at("apps").asNumber(), 1);

    // One speedup row per (seed, scale) combination, each spanning
    // the two machine shapes, with speedup 1.0 at the smallest.
    const auto &speedup = doc.at("speedup").asArray();
    ASSERT_EQ(speedup.size(), 6u);
    for (const auto &row : speedup) {
        const auto &points = row.at("points").asArray();
        ASSERT_EQ(points.size(), 2u);
        EXPECT_EQ(points[0].at("nprocs").asNumber(), 2);
        EXPECT_EQ(points[1].at("nprocs").asNumber(), 4);
        EXPECT_DOUBLE_EQ(points[0].at("speedup").asNumber(), 1.0);
        EXPECT_GT(points[1].at("speedup").asNumber(), 0.0);
    }

    // League tables cover the contended classes; memory modules see
    // traffic in every run of this workload.
    bool sawModules = false;
    for (const auto &league : doc.at("class_leagues").asArray())
        if (league.at("class").asString() == "memory_module") {
            sawModules = true;
            EXPECT_FALSE(league.at("rows").asArray().empty());
        }
    EXPECT_TRUE(sawModules);
    EXPECT_FALSE(doc.at("hot_spots").asArray().empty());
    EXPECT_FALSE(doc.at("merged_wait_hists").asArray().empty());

    EXPECT_NE(md.find("# Cedar study summary"), std::string::npos);
    EXPECT_NE(md.find("## Speedup surface"), std::string::npos);
    EXPECT_NE(md.find("## Contention league tables"),
              std::string::npos);
    EXPECT_NE(md.find("### memory_module"), std::string::npos);
    // Every point appears by name in the speedup tables.
    for (const auto &e : entries)
        EXPECT_NE(md.find("| " + e.name + " |"), std::string::npos)
            << e.name;
}

// ------------------------------------------------------------------
// Shard-union, directory-order and resume byte-identity
// ------------------------------------------------------------------

TEST(Summarize, ShardUnionMatchesUnshardedByteForByte)
{
    TempDir scns, full, s0, s1;
    const auto entries = gridEntries(scns);
    ASSERT_EQ(core::runStudy(entries, optsFor(full)).exitCode(), 0);

    auto shard0 = optsFor(s0);
    shard0.shardIndex = 0;
    shard0.shardCount = 2;
    ASSERT_EQ(core::runStudy(entries, shard0).exitCode(), 0);
    auto shard1 = optsFor(s1);
    shard1.shardIndex = 1;
    shard1.shardCount = 2;
    ASSERT_EQ(core::runStudy(entries, shard1).exitCode(), 0);

    const auto whole = render({full.str()});
    const auto sharded = render({s0.str(), s1.str()});
    EXPECT_EQ(whole.first, sharded.first);
    EXPECT_EQ(whole.second, sharded.second);

    // Listing the shards in the other order changes nothing.
    const auto reversed = render({s1.str(), s0.str()});
    EXPECT_EQ(sharded.first, reversed.first);
    EXPECT_EQ(sharded.second, reversed.second);

    // Overlapping inputs dedup by content hash: the same study twice
    // is the same study once.
    const auto doubled = render({full.str(), full.str()});
    EXPECT_EQ(whole.first, doubled.first);
    EXPECT_EQ(whole.second, doubled.second);
}

TEST(Summarize, KillMidStudyThenResumeSummarizesIdentically)
{
    TempDir scns, uninterrupted, killed;
    const auto entries = gridEntries(scns);
    ASSERT_EQ(
        core::runStudy(entries, optsFor(uninterrupted)).exitCode(),
        0);

    // Complete a run, then reconstruct the on-disk state an instant
    // before one scenario finished: its journal records, artifacts
    // and cache entry gone (a kill -9 leaves at most a torn journal
    // tail, which the reader drops).
    const auto firstRep = core::runStudy(entries, optsFor(killed));
    ASSERT_EQ(firstRep.exitCode(), 0);
    const auto &lost = firstRep.rows[4];
    fs::remove(killed / (lost.name + ".json"));
    fs::remove(killed / (lost.name + ".metrics.json"));
    fs::remove(killed / "manifest.json");
    fs::remove_all(fs::path(killed.str()) / "cache" / lost.hash);
    std::istringstream journal(slurp(killed / "manifest.jsonl"));
    std::string filtered, line;
    while (std::getline(journal, line))
        if (line.find("\"scenario\":\"" + lost.name + "\"") ==
            std::string::npos)
            filtered += line + "\n";
    spit(killed / "manifest.jsonl", filtered);

    auto resumeOpts = optsFor(killed);
    resumeOpts.resume = true;
    const auto resumed = core::runStudy(entries, resumeOpts);
    EXPECT_EQ(resumed.ran, 1u);
    EXPECT_EQ(resumed.resumed, 11u);

    const auto ref = render({uninterrupted.str()});
    const auto after = render({killed.str()});
    EXPECT_EQ(ref.first, after.first);
    EXPECT_EQ(ref.second, after.second);
}

// ------------------------------------------------------------------
// Conflicts, failures, baseline
// ------------------------------------------------------------------

TEST(Summarize, SameNameDifferentContentRefusesToMerge)
{
    TempDir scnA, scnB, outA, outB;
    writeScn(scnA, "dup.scn", tinyScenario("dup"));
    writeScn(scnB, "dup.scn",
             tinyScenario("dup", "\n[machine]\nseed = 99\n"));
    ASSERT_EQ(core::runStudy(core::loadScenarioDir(scnA.str()),
                             optsFor(outA))
                  .exitCode(),
              0);
    ASSERT_EQ(core::runStudy(core::loadScenarioDir(scnB.str()),
                             optsFor(outB))
                  .exitCode(),
              0);
    core::SummarizeOptions o;
    o.dirs = {outA.str(), outB.str()};
    EXPECT_THROW(core::buildSummary(o), ConfigError);
}

TEST(Summarize, EmptyInputsRejected)
{
    EXPECT_THROW(core::buildSummary(core::SummarizeOptions{}),
                 ConfigError);
    TempDir empty;
    core::SummarizeOptions o;
    o.dirs = {empty.str()};
    EXPECT_THROW(core::buildSummary(o), ConfigError); // no manifest
}

TEST(Summarize, FailedScenariosLandInTheLedger)
{
    TempDir scns, out;
    writeScn(scns, "ok.scn", tinyScenario("ok"));
    writeScn(scns, "stuck.scn",
             tinyScenario("stuck",
                          "\n[run]\ngm_timeout = 0\n"
                          "watchdog_events = 20000\n"
                          "[faults]\ninject = module:0:stuck\n"));
    core::runStudy(core::loadScenarioDir(scns.str()), optsFor(out));

    const auto [json, md] = render({out.str()});
    const JsonValue doc = JsonValue::parse(json);
    EXPECT_EQ(doc.at("counts").at("scenarios").asNumber(), 1);
    const auto &failures = doc.at("failures").asArray();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].at("name").asString(), "stuck");
    EXPECT_NE(md.find("## Failures"), std::string::npos);
    EXPECT_NE(md.find("| stuck |"), std::string::npos);
}

TEST(Summarize, BaselineAgainstItselfIsAllZeroDeltas)
{
    TempDir scns, full;
    const auto entries = gridEntries(scns);
    ASSERT_EQ(core::runStudy(entries, optsFor(full)).exitCode(), 0);

    const auto [json, md] = render({full.str()}, full.str());
    const JsonValue doc = JsonValue::parse(json);
    const auto &base = doc.at("baseline");
    EXPECT_EQ(base.at("scenarios").asNumber(), 12);
    const auto &deltas = base.at("deltas").asArray();
    ASSERT_EQ(deltas.size(), 12u);
    for (const auto &d : deltas) {
        EXPECT_DOUBLE_EQ(d.at("seconds_pct").asNumber(), 0.0);
        EXPECT_DOUBLE_EQ(d.at("d_concurrency").asNumber(), 0.0);
        EXPECT_DOUBLE_EQ(d.at("d_ground_truth_pct").asNumber(), 0.0);
    }
    EXPECT_EQ(doc.at("notes").asArray().size(), 0u);
    EXPECT_NE(md.find("## Baseline deltas"), std::string::npos);
}

} // namespace
