/**
 * @file
 * Tests for the per-loop-phase profiler and the network utilisation
 * report.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/profile.hh"
#include "hw/machine.hh"
#include "os/accounting.hh"

namespace
{

using namespace cedar;
using apps::AppModel;
using apps::LoopKind;
using apps::LoopSpec;
using apps::SerialSpec;

AppModel
twoLoopApp()
{
    AppModel app;
    app.name = "profiled";
    app.steps = 3;
    SerialSpec s;
    s.compute = 5000;
    app.phases.push_back(s); // phase 0
    LoopSpec big;
    big.kind = LoopKind::sdoall;
    big.outerIters = 8;
    big.innerIters = 32;
    big.computePerIter = 2000;
    big.regionWords = 1 << 15;
    app.phases.push_back(big); // phase 1 (dominant)
    LoopSpec small;
    small.kind = LoopKind::xdoall;
    small.outerIters = 16;
    small.computePerIter = 300;
    small.regionWords = 1 << 14;
    app.phases.push_back(small); // phase 2
    LoopSpec mc;
    mc.kind = LoopKind::mc_cdoall;
    mc.outerIters = 8;
    mc.computePerIter = 400;
    mc.regionWords = 1 << 14;
    app.phases.push_back(mc); // phase 3
    return app;
}

core::RunResult
tracedRun(unsigned procs)
{
    core::RunOptions o;
    o.collectTrace = true;
    return core::runExperiment(twoLoopApp(), procs, o);
}

TEST(LoopProfile, FindsEveryLoopPhase)
{
    const auto r = tracedRun(16);
    const auto profile = core::profileLoopPhases(r);
    ASSERT_EQ(profile.size(), 3u); // serial phase is not a loop
    // All three loop phases present, with correct construct tags.
    bool saw1 = false, saw2 = false, saw3 = false;
    for (const auto &p : profile) {
        if (p.phaseIdx == 1) {
            saw1 = true;
            EXPECT_FALSE(p.isFlat);
            EXPECT_FALSE(p.isMainClusterOnly);
        }
        if (p.phaseIdx == 2) {
            saw2 = true;
            EXPECT_TRUE(p.isFlat);
        }
        if (p.phaseIdx == 3) {
            saw3 = true;
            EXPECT_TRUE(p.isMainClusterOnly);
        }
    }
    EXPECT_TRUE(saw1 && saw2 && saw3);
}

TEST(LoopProfile, CountsInvocationsAndBodies)
{
    const auto r = tracedRun(16);
    for (const auto &p : core::profileLoopPhases(r)) {
        EXPECT_EQ(p.invocations, 3u) << "phase " << p.phaseIdx;
        if (p.phaseIdx == 1)
            EXPECT_EQ(p.bodies, 3u * 8u * 32u);
        if (p.phaseIdx == 2)
            EXPECT_EQ(p.bodies, 3u * 16u);
    }
}

TEST(LoopProfile, DominantPhaseRanksFirst)
{
    const auto r = tracedRun(16);
    const auto profile = core::profileLoopPhases(r);
    EXPECT_EQ(profile.front().phaseIdx, 1u);
    EXPECT_GT(profile.front().wallPctOf(r.ct), 50.0);
}

TEST(LoopProfile, WallTimesBoundedByCt)
{
    const auto r = tracedRun(32);
    sim::Tick total = 0;
    for (const auto &p : core::profileLoopPhases(r)) {
        EXPECT_LE(p.wall, r.ct);
        EXPECT_LE(p.barrierWall, p.wall);
        total += p.wall;
    }
    EXPECT_LE(total, r.ct + r.ct / 20);
}

TEST(LoopProfile, PrintsATable)
{
    const auto r = tracedRun(16);
    std::ostringstream os;
    core::printLoopProfile(os, r, core::profileLoopPhases(r));
    EXPECT_NE(os.str().find("sdoall/cdoall"), std::string::npos);
    EXPECT_NE(os.str().find("xdoall"), std::string::npos);
}

TEST(LoopProfile, EmptyOnUntracedRun)
{
    const auto r = core::runExperiment(twoLoopApp(), 8);
    EXPECT_TRUE(core::profileLoopPhases(r).empty());
}

TEST(NetworkReport, ListsEveryStageAndModuleGroup)
{
    hw::Machine m{hw::CedarConfig::withProcs(32)};
    m.ce(0).globalAccess(0, 256, os::UserAct::iter_exec, [] {});
    m.ce(8).globalAccess(0, 256, os::UserAct::iter_exec, [] {});
    m.eq().run();

    std::ostringstream os;
    m.net().report(os, m.now());
    const auto text = os.str();
    EXPECT_NE(text.find("stage1.cluster0"), std::string::npos);
    EXPECT_NE(text.find("stage1.cluster3"), std::string::npos);
    EXPECT_NE(text.find("stage2.group7"), std::string::npos);
    EXPECT_NE(text.find("modules.group0"), std::string::npos);
    EXPECT_NE(text.find("req"), std::string::npos);
}

} // namespace
