/**
 * @file
 * Tests for the machine model: configuration factory, CE execution
 * primitives, interrupt overlay semantics, concurrency bus and the
 * assembled machine.
 */

#include <gtest/gtest.h>

#include "hw/machine.hh"
#include "os/xylem.hh"

namespace
{

using namespace cedar;
using cedar::os::OsAct;
using cedar::os::TimeCat;
using cedar::os::UserAct;
using cedar::sim::Tick;

TEST(Config, WithProcsMatchesPaperConfigurations)
{
    const struct
    {
        unsigned procs, clusters, ces;
    } cases[] = {{1, 1, 1}, {4, 1, 4}, {8, 1, 8}, {16, 2, 8}, {32, 4, 8}};
    for (const auto &c : cases) {
        const auto cfg = hw::CedarConfig::withProcs(c.procs);
        EXPECT_EQ(cfg.nClusters, c.clusters);
        EXPECT_EQ(cfg.cesPerCluster, c.ces);
        EXPECT_EQ(cfg.numCes(), c.procs);
    }
    EXPECT_THROW(hw::CedarConfig::withProcs(7), std::invalid_argument);
}

TEST(Config, LabelNamesProcessorCount)
{
    EXPECT_EQ(hw::CedarConfig::withProcs(32).label(), "32 proc");
}

struct MachineFixture : ::testing::Test
{
    hw::Machine m{hw::CedarConfig::withProcs(32)};
};

TEST_F(MachineFixture, TopologyAssembled)
{
    EXPECT_EQ(m.numClusters(), 4u);
    EXPECT_EQ(m.numCes(), 32u);
    EXPECT_EQ(m.ce(9).cluster(), 1);
    EXPECT_EQ(m.ce(9).localIndex(), 1);
    EXPECT_EQ(m.ce(31).cluster(), 3);
    EXPECT_EQ(m.ce(31).localIndex(), 7);
}

TEST_F(MachineFixture, GlobalAllocatorAlignsToGroup)
{
    const auto a = m.allocGlobal(10);
    const auto b = m.allocGlobal(10);
    EXPECT_EQ(a % m.config().groupSize, 0u);
    EXPECT_EQ(b % m.config().groupSize, 0u);
    EXPECT_GE(b, a + 10);
}

TEST_F(MachineFixture, SyncWordsLandOnDistinctModules)
{
    const auto a = m.allocSyncWord();
    const auto b = m.allocSyncWord();
    EXPECT_NE(m.gmem().map().module(a), m.gmem().map().module(b));
}

TEST_F(MachineFixture, ComputeAccountsUserTime)
{
    bool done = false;
    m.ce(0).compute(500, UserAct::serial, [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.now(), 500u);
    EXPECT_EQ(m.acct().ce(0).inUser(UserAct::serial), 500u);
}

TEST_F(MachineFixture, OpsRunInProgramOrder)
{
    std::vector<int> order;
    auto &ce = m.ce(0);
    ce.compute(10, UserAct::serial, [&] {
        order.push_back(1);
        ce.compute(10, UserAct::serial, [&] { order.push_back(2); });
    });
    m.eq().run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(m.now(), 20u);
}

TEST_F(MachineFixture, GlobalAccessStallsAreUserTime)
{
    auto &ce = m.ce(0);
    Tick completed = 0;
    ce.globalAccess(0, 64, UserAct::iter_exec,
                    [&] { completed = m.now(); });
    m.eq().run();
    EXPECT_GT(completed, 64u); // pipeline + latency
    EXPECT_EQ(m.acct().ce(0).inUser(UserAct::iter_exec), completed);
    EXPECT_EQ(ce.globalWords(), 64u);
}

TEST_F(MachineFixture, GlobalRmwDeliversOldValue)
{
    m.gmem().poke(40, 7);
    std::uint64_t old = 99;
    m.ce(0).globalRmw(40, [](std::uint64_t v) { return v + 1; },
                      UserAct::iter_pickup,
                      [&](std::uint64_t o) { old = o; });
    m.eq().run();
    EXPECT_EQ(old, 7u);
    EXPECT_EQ(m.gmem().peek(40), 8u);
}

TEST_F(MachineFixture, InterruptElongatesBusyOp)
{
    auto &ce = m.ce(0);
    Tick completed = 0;
    ce.compute(1000, UserAct::serial, [&] { completed = m.now(); });
    m.eq().schedule(100, [&] {
        ce.chargeInterrupt(50, TimeCat::interrupt, OsAct::cpi);
    });
    m.eq().run();
    EXPECT_EQ(completed, 1050u);
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::cpi), 50u);
    EXPECT_EQ(m.acct().ce(0).inUser(UserAct::serial), 1000u);
}

TEST_F(MachineFixture, InterruptDuringWaitIsDeductedFromWait)
{
    auto &ce = m.ce(0);
    ce.beginWait();
    m.eq().schedule(100, [&] {
        ce.chargeInterrupt(30, TimeCat::interrupt, OsAct::cpi);
    });
    Tick waited = 0;
    m.eq().schedule(400, [&] { waited = ce.endWaitUser(
                                   UserAct::barrier_wait); });
    m.eq().run();
    EXPECT_EQ(waited, 370u);
    EXPECT_EQ(m.acct().ce(0).inUser(UserAct::barrier_wait), 370u);
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::cpi), 30u);
}

TEST_F(MachineFixture, PendingChargeDelaysNextOp)
{
    auto &ce = m.ce(0);
    ce.chargeInterrupt(25, TimeCat::system, OsAct::ctx);
    Tick completed = 0;
    ce.compute(100, UserAct::serial, [&] { completed = m.now(); });
    m.eq().run();
    EXPECT_EQ(completed, 125u);
}

TEST_F(MachineFixture, ActiveFollowsBusyAndWaitKind)
{
    auto &ce = m.ce(0);
    EXPECT_FALSE(ce.active());
    ce.beginWait(/*passive=*/true);
    EXPECT_FALSE(ce.active()); // bus sync is not a software spin
    ce.endWait();
    ce.beginWait(/*passive=*/false);
    EXPECT_TRUE(ce.active());
    ce.endWait();
    ce.compute(10, UserAct::serial, [] {});
    EXPECT_TRUE(ce.active());
    m.eq().run();
    EXPECT_FALSE(ce.active());
}

TEST_F(MachineFixture, ClusterActiveCount)
{
    auto &cl = m.cluster(0);
    EXPECT_EQ(cl.activeCount(), 0u);
    cl.ce(0).compute(10, UserAct::serial, [] {});
    cl.ce(3).compute(10, UserAct::serial, [] {});
    EXPECT_EQ(cl.activeCount(), 2u);
    m.eq().run();
    EXPECT_EQ(cl.activeCount(), 0u);
}

TEST_F(MachineFixture, BusGathersAllParticipants)
{
    auto &cl = m.cluster(0);
    cl.bus().expect(3);
    int resumed = 0;
    Tick resume_at = 0;
    for (int j = 0; j < 3; ++j) {
        m.eq().schedule(static_cast<Tick>(j * 100), [&, j] {
            cl.bus().arrive(cl.ce(j), UserAct::iter_exec, [&] {
                ++resumed;
                resume_at = m.now();
            });
        });
    }
    m.eq().run();
    EXPECT_EQ(resumed, 3);
    // Everyone resumes after the last arrival plus the sync cost.
    EXPECT_EQ(resume_at, 200 + m.costs().cdoall_sync);
    // The earliest arriver waited ~200 ticks, accounted to the act.
    EXPECT_GE(m.acct().ce(0).inUser(UserAct::iter_exec), 200u);
}

TEST_F(MachineFixture, QueueingStallTracksContention)
{
    // Two CEs streaming the same addresses: the later one observes
    // queueing stall.
    m.ce(0).globalAccess(0, 128, UserAct::iter_exec, [] {});
    m.ce(1).globalAccess(0, 128, UserAct::iter_exec, [] {});
    m.eq().run();
    EXPECT_GT(m.ce(0).queueingStall() + m.ce(1).queueingStall(), 0u);
}

TEST(MachineSmall, OneProcessorConfigWorks)
{
    hw::Machine m{hw::CedarConfig::withProcs(1)};
    bool done = false;
    m.ce(0).globalAccess(0, 16, UserAct::iter_exec, [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.ce(0).queueingStall(), 0u); // no one to contend with
}

} // namespace
