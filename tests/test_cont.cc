/**
 * @file
 * Tests for the allocation-free continuation type (sim/cont.hh):
 * SmallFn's inline storage and move semantics, the thread-local
 * ContArena fallback for oversized captures, and the end-to-end
 * steady-state guarantee — a warm ADM run must not take fresh heap
 * allocations for its continuations.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <utility>

#include "apps/perfect.hh"
#include "core/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace
{

using cedar::sim::Cont;
using cedar::sim::ContAllocStats;
using cedar::sim::EventQueue;
using cedar::sim::RmwFn;
using cedar::sim::SmallFn;
using cedar::sim::ValCont;

ContAllocStats
snap()
{
    return EventQueue::allocStats();
}

/** A capture too large for the inline buffer, forcing the arena. */
struct BigBlob
{
    std::array<std::uint64_t, 16> words{}; // 128 bytes
};

/** A capture beyond the largest arena size class (4096 bytes). */
struct HugeBlob
{
    std::array<std::uint64_t, 640> words{}; // 5120 bytes
};

// ---------------------------------------------------------------
// Inline storage
// ---------------------------------------------------------------

TEST(ContStorage, SmallCapturesLiveInline)
{
    const auto s0 = snap();
    int hits = 0;
    {
        Cont c{[&hits] { ++hits; }};
        ASSERT_TRUE(static_cast<bool>(c));
        c();
        c();
    }
    EXPECT_EQ(hits, 2);
    // No arena traffic at all: neither a fresh block nor a reuse.
    const auto s1 = snap();
    EXPECT_EQ(s1.heapAllocs, s0.heapAllocs);
    EXPECT_EQ(s1.poolReuses, s0.poolReuses);
    EXPECT_EQ(s1.live, s0.live);
}

TEST(ContStorage, KernelShapedCaptureStaysInline)
{
    // The hot-path closure shape the inline buffer is sized for:
    // a this-pointer, a shared_ptr and a couple of scalars.
    const auto s0 = snap();
    auto sp = std::make_shared<int>(7);
    std::uint64_t acc = 0;
    {
        Cont c{[&acc, sp, x = std::uint64_t{5},
                y = std::uint32_t{3}] { acc += *sp + x + y; }};
        c();
    }
    EXPECT_EQ(acc, 15u);
    EXPECT_EQ(snap().heapAllocs, s0.heapAllocs);
}

TEST(ContStorage, MoveTransfersTargetAndNullsSource)
{
    int hits = 0;
    Cont a{[&hits] { ++hits; }};
    Cont b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    Cont c;
    EXPECT_FALSE(static_cast<bool>(c));
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    ASSERT_TRUE(static_cast<bool>(c));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(ContStorage, AssignmentDestroysTheOldTarget)
{
    int destroyed = 0;
    struct Tracker
    {
        int *d;
        Tracker(int *d) : d(d) {}
        Tracker(Tracker &&o) noexcept : d(o.d) { o.d = nullptr; }
        ~Tracker()
        {
            if (d)
                ++*d;
        }
    };
    {
        Cont c{[t = Tracker{&destroyed}] { (void)t; }};
        EXPECT_EQ(destroyed, 0);
        c = nullptr;
        EXPECT_EQ(destroyed, 1);
        EXPECT_FALSE(static_cast<bool>(c));
    }
    EXPECT_EQ(destroyed, 1); // destructor of an empty fn is a no-op

    {
        Cont c{[t = Tracker{&destroyed}] { (void)t; }};
        c = [] {}; // replacing the target destroys the old one
        EXPECT_EQ(destroyed, 2);
        Cont d{[t = Tracker{&destroyed}] { (void)t; }};
    }
    EXPECT_EQ(destroyed, 3); // scope exit destroys the live capture
}

TEST(ContStorage, AcceptsLvalueStdFunctionCopies)
{
    // The self-scheduling idiom in tests and drivers: a copyable
    // std::function is handed to the queue by lvalue, repeatedly.
    EventQueue eq;
    int runs = 0;
    std::function<void()> again = [&] {
        if (++runs < 3)
            eq.scheduleIn(1, again);
    };
    eq.schedule(0, again);
    eq.run();
    EXPECT_EQ(runs, 3);
}

TEST(ContStorage, ValueAndRmwSignatures)
{
    std::uint64_t seen = 0;
    ValCont v{[&seen](std::uint64_t x) { seen = x; }};
    v(42);
    EXPECT_EQ(seen, 42u);

    RmwFn f{[](std::uint64_t x) { return x + 8; }};
    EXPECT_EQ(f(34), 42u);

    SmallFn<bool(std::uint64_t)> pred{
        [](std::uint64_t x) { return x >= 10; }};
    EXPECT_TRUE(pred(10));
    EXPECT_FALSE(pred(9));
}

// ---------------------------------------------------------------
// Arena fallback for oversized captures
// ---------------------------------------------------------------

TEST(ContArena, OversizeCaptureFallsBackAndStaysCorrect)
{
    const auto s0 = snap();
    std::uint64_t sum = 0;
    {
        BigBlob blob;
        for (std::size_t i = 0; i < blob.words.size(); ++i)
            blob.words[i] = i + 1;
        Cont c{[blob, &sum] {
            for (const auto w : blob.words)
                sum += w;
        }};
        // One arena block checked out, by fresh alloc or pool reuse
        // depending on what earlier tests warmed up.
        const auto s1 = snap();
        EXPECT_EQ(s1.live, s0.live + 1);
        EXPECT_EQ(s1.heapAllocs + s1.poolReuses,
                  s0.heapAllocs + s0.poolReuses + 1);

        // Moving an arena-backed fn relocates the block pointer; it
        // must not allocate, copy or destroy anything.
        Cont d = std::move(c);
        EXPECT_FALSE(static_cast<bool>(c));
        const auto s2 = snap();
        EXPECT_EQ(s2.live, s1.live);
        EXPECT_EQ(s2.heapAllocs, s1.heapAllocs);
        d();
    }
    EXPECT_EQ(sum, 16u * 17u / 2u);
    const auto s3 = snap();
    EXPECT_EQ(s3.live, s0.live); // block returned to the pool
}

TEST(ContArena, FreedBlocksAreRecycled)
{
    // Warm the size class, then check a same-class allocation is
    // served from the free list instead of the heap.
    { Cont warm{[b = BigBlob{}] { (void)b; }}; }
    const auto s0 = snap();
    {
        Cont c{[b = BigBlob{}] { (void)b; }};
        const auto s1 = snap();
        EXPECT_EQ(s1.heapAllocs, s0.heapAllocs);
        EXPECT_EQ(s1.poolReuses, s0.poolReuses + 1);
    }
    EXPECT_EQ(snap().live, s0.live);
}

TEST(ContArena, BeyondLargestClassCountsEveryHeapAlloc)
{
    // Captures past the 4096-byte top class bypass the pool — every
    // construction is a visible fresh heap allocation, so a capture
    // that big can never hide in a "steady state".
    const auto s0 = snap();
    for (int r = 0; r < 2; ++r) {
        std::uint64_t out = 0;
        Cont c{[h = HugeBlob{}, &out] { out = h.words.size(); }};
        c();
        EXPECT_EQ(out, 640u);
    }
    const auto s1 = snap();
    EXPECT_EQ(s1.heapAllocs, s0.heapAllocs + 2);
    EXPECT_EQ(s1.poolReuses, s0.poolReuses);
    EXPECT_EQ(s1.live, s0.live);
}

// ---------------------------------------------------------------
// Steady state: a warm ADM run allocates nothing per event
// ---------------------------------------------------------------

TEST(ContSteadyState, WarmAdmRunTakesNoFreshContinuationAllocs)
{
    // First run warms the arena's free lists up to the workload's
    // peak concurrent continuation population; repeat runs of the
    // same deterministic workload must then be served entirely from
    // the pool. This is ROADMAP item 1b's closing assertion: the
    // event-machinery-bound workload runs allocation-free per event.
    const auto app = cedar::apps::perfectAppByName("ADM");
    cedar::core::RunOptions o;
    o.scale = 0.05;

    const auto warmup = cedar::core::runExperiment(app, 8, o);
    ASSERT_GT(warmup.eventsExecuted, 0u);

    const auto s0 = snap();
    const auto res = cedar::core::runExperiment(app, 8, o);
    const auto s1 = snap();
    EXPECT_EQ(res.eventsExecuted, warmup.eventsExecuted);

    const std::uint64_t fresh = s1.heapAllocs - s0.heapAllocs;
    EXPECT_EQ(fresh, 0u)
        << fresh << " fresh heap allocations in a warm run of "
        << res.eventsExecuted << " events";
    // The run does lean on the arena — the pool serves it.
    EXPECT_GT(s1.poolReuses, s0.poolReuses);
    EXPECT_EQ(s1.live, s0.live); // everything checked back in
}

} // namespace
