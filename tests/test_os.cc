/**
 * @file
 * Tests for the Xylem OS model: accounting ledger, page table and
 * fault classification, kernel locks, OS services and daemons.
 */

#include <gtest/gtest.h>

#include "hw/machine.hh"
#include "os/accounting.hh"
#include "os/kernel_lock.hh"
#include "os/page_table.hh"
#include "os/xylem.hh"

namespace
{

using namespace cedar;
using cedar::os::OsAct;
using cedar::os::TimeCat;
using cedar::os::UserAct;
using cedar::sim::Tick;

TEST(Accounting, ChargesLandInRightBuckets)
{
    os::Accounting acct(2, 8);
    acct.addUser(0, UserAct::serial, 100);
    acct.addOs(0, TimeCat::system, OsAct::ctx, 30);
    acct.addOs(0, TimeCat::interrupt, OsAct::cpi, 20);
    acct.addKernelSpin(0, 5);
    const auto &a = acct.ce(0);
    EXPECT_EQ(a.inCat(TimeCat::user), 100u);
    EXPECT_EQ(a.inCat(TimeCat::system), 30u);
    EXPECT_EQ(a.inCat(TimeCat::interrupt), 20u);
    EXPECT_EQ(a.inCat(TimeCat::kspin), 5u);
    EXPECT_EQ(a.inUser(UserAct::serial), 100u);
    EXPECT_EQ(a.inOs(OsAct::ctx), 30u);
    EXPECT_EQ(a.busyTicks(), 155u);
}

TEST(Accounting, AddOsRejectsNonOsCategories)
{
    os::Accounting acct(1, 1);
    EXPECT_THROW(acct.addOs(0, TimeCat::user, OsAct::ctx, 1),
                 std::logic_error);
}

TEST(Accounting, FinalizeFillsIdle)
{
    os::Accounting acct(1, 2);
    acct.addUser(0, UserAct::serial, 300);
    acct.finalize(1000);
    EXPECT_EQ(acct.ce(0).inCat(TimeCat::idle), 700u);
    EXPECT_EQ(acct.ce(1).inCat(TimeCat::idle), 1000u);
    EXPECT_EQ(acct.overshoot(), 0u);
}

TEST(Accounting, FinalizeRecordsOvershoot)
{
    os::Accounting acct(1, 1);
    acct.addUser(0, UserAct::serial, 1200);
    acct.finalize(1000);
    EXPECT_EQ(acct.overshoot(), 200u);
    EXPECT_EQ(acct.ce(0).inCat(TimeCat::idle), 0u);
}

TEST(Accounting, ChargesAfterFinalizeAreDropped)
{
    os::Accounting acct(1, 1);
    acct.finalize(100);
    acct.addUser(0, UserAct::serial, 50);
    EXPECT_EQ(acct.ce(0).inCat(TimeCat::user), 0u);
}

TEST(Accounting, ClusterAndTotalAggregate)
{
    os::Accounting acct(2, 2);
    acct.addUser(0, UserAct::serial, 10);
    acct.addUser(1, UserAct::iter_exec, 20);
    acct.addUser(2, UserAct::helper_wait, 40);
    const auto c0 = acct.cluster(0);
    EXPECT_EQ(c0.inCat(TimeCat::user), 30u);
    const auto tot = acct.total();
    EXPECT_EQ(tot.inCat(TimeCat::user), 70u);
    EXPECT_EQ(tot.inUser(UserAct::helper_wait), 40u);
}

TEST(AccountingNames, AllCategoriesHaveNames)
{
    for (int i = 0; i < static_cast<int>(TimeCat::NUM); ++i)
        EXPECT_STRNE(toString(static_cast<TimeCat>(i)), "?");
    for (int i = 0; i < static_cast<int>(OsAct::NUM); ++i)
        EXPECT_STRNE(toString(static_cast<OsAct>(i)), "?");
    for (int i = 0; i < static_cast<int>(UserAct::NUM); ++i)
        EXPECT_STRNE(toString(static_cast<UserAct>(i)), "?");
}

TEST(PageTable, FirstTouchIsSequentialFault)
{
    os::PageTable pt;
    EXPECT_EQ(pt.touch(5, 0), os::Touch::fault_seq);
    EXPECT_EQ(pt.seqFaults(), 1u);
}

TEST(PageTable, TouchDuringWindowIsConcurrent)
{
    os::PageTable pt;
    pt.touch(5, 0);
    pt.faultWindow(5, 100);
    EXPECT_EQ(pt.touch(5, 50), os::Touch::fault_conc);
    EXPECT_EQ(pt.concFaults(), 1u);
}

TEST(PageTable, TouchAfterWindowIsResident)
{
    os::PageTable pt;
    pt.touch(5, 0);
    pt.faultWindow(5, 100);
    EXPECT_EQ(pt.touch(5, 100), os::Touch::resident);
    EXPECT_EQ(pt.touch(5, 5000), os::Touch::resident);
    EXPECT_EQ(pt.concFaults(), 0u);
}

TEST(PageTable, UnsetWindowClassifiesRacersAsConcurrent)
{
    os::PageTable pt;
    pt.touch(9, 10);
    // No faultWindow yet: a racer at the same instant is concurrent.
    EXPECT_EQ(pt.touch(9, 10), os::Touch::fault_conc);
}

TEST(PageTable, ResolveAtReportsWindow)
{
    os::PageTable pt;
    EXPECT_EQ(pt.resolveAt(3), sim::max_tick);
    pt.touch(3, 0);
    pt.faultWindow(3, 77);
    EXPECT_EQ(pt.resolveAt(3), 77u);
}

TEST(PageTable, ResetClears)
{
    os::PageTable pt;
    pt.touch(1, 0);
    pt.reset();
    EXPECT_EQ(pt.seqFaults(), 0u);
    EXPECT_EQ(pt.residentPages(), 0u);
}

TEST(KernelLock, UncontendedHasNoSpin)
{
    os::KernelLock lock("l");
    const auto t = lock.reserve(100, 50);
    EXPECT_EQ(t.spin, 0u);
    EXPECT_EQ(t.exit, 150u);
}

TEST(KernelLock, ContendedSpins)
{
    os::KernelLock lock("l");
    lock.reserve(0, 100);
    const auto t = lock.reserve(40, 100);
    EXPECT_EQ(t.spin, 60u);
    EXPECT_EQ(t.exit, 200u);
}

struct XylemFixture : ::testing::Test
{
    hw::Machine m{hw::CedarConfig::withProcs(8)};
};

TEST_F(XylemFixture, ResidentTouchCostsNothing)
{
    auto &ce = m.ce(0);
    m.xylem().pageTable().touch(100, 0); // pre-fault
    m.xylem().pageTable().faultWindow(100, 0);
    bool done = false;
    m.xylem().touchPages(ce, 100, 1, [&] { done = true; });
    EXPECT_TRUE(done); // synchronous: no fault, no event needed
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::pgflt_seq), 0u);
}

TEST_F(XylemFixture, SequentialFaultCostsServiceAndCritSect)
{
    auto &ce = m.ce(0);
    bool done = false;
    m.xylem().touchPages(ce, 200, 1, [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.xylem().pageTable().seqFaults(), 1u);
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::pgflt_seq),
              m.costs().pgflt_seq_cost);
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::crit_clus),
              m.costs().crit_clus_cost);
}

TEST_F(XylemFixture, ConcurrentFaultIsDetectedAndCostsMore)
{
    bool a_done = false, b_done = false;
    m.xylem().touchPages(m.ce(0), 300, 1, [&] { a_done = true; });
    m.xylem().touchPages(m.ce(1), 300, 1, [&] { b_done = true; });
    m.eq().run();
    EXPECT_TRUE(a_done);
    EXPECT_TRUE(b_done);
    EXPECT_EQ(m.xylem().pageTable().seqFaults(), 1u);
    EXPECT_EQ(m.xylem().pageTable().concFaults(), 1u);
    EXPECT_GE(m.acct().ce(1).inOs(OsAct::pgflt_conc),
              m.costs().pgflt_conc_cost);
    // The concurrent fault gathered the cluster with a CPI.
    EXPECT_GE(m.xylem().stats().cpis, 1u);
    EXPECT_GT(m.acct().ce(2).inOs(OsAct::cpi), 0u);
}

TEST_F(XylemFixture, MultiPageWalkFaultsEachNewPage)
{
    bool done = false;
    m.xylem().touchPages(m.ce(0), 400, 5, [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.xylem().pageTable().seqFaults(), 5u);
}

TEST_F(XylemFixture, ClusterSyscallAccounted)
{
    bool done = false;
    m.xylem().clusterSyscall(m.ce(0), [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.xylem().stats().clusterSyscalls, 1u);
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::syscall_clus),
              m.costs().syscall_clus_cost);
}

TEST_F(XylemFixture, GlobalSyscallUsesGlobalLock)
{
    bool done = false;
    m.xylem().globalSyscall(m.ce(0), [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::crit_glbl),
              m.costs().crit_glbl_cost);
    EXPECT_EQ(m.acct().ce(0).inOs(OsAct::syscall_glbl),
              m.costs().syscall_glbl_cost);
}

TEST_F(XylemFixture, CpiChargesWholeCluster)
{
    bool done = false;
    m.xylem().crossProcessorInterrupt(0, [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(m.acct().ce(i).inOs(OsAct::cpi), m.costs().cpi_save);
}

TEST_F(XylemFixture, IoBlockSwitchesGangOut)
{
    bool done = false;
    m.xylem().ioBlock(m.ce(0), [&] { done = true; });
    m.eq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(m.xylem().stats().ioBlocks, 1u);
    EXPECT_GT(m.acct().ce(0).inOs(OsAct::ctx), 0u);
    EXPECT_GT(m.acct().ce(5).inOs(OsAct::ctx), 0u);
}

TEST_F(XylemFixture, DaemonsGenerateCtxSwitchesUntilStopped)
{
    m.xylem().startDaemons();
    m.eq().runUntil(2'000'000);
    m.xylem().stopDaemons();
    EXPECT_GT(m.xylem().stats().ctxSwitches, 0u);
    const auto before = m.xylem().stats().ctxSwitches;
    m.eq().run(); // drains remaining timer events, which do nothing
    EXPECT_EQ(m.xylem().stats().ctxSwitches, before);
}

TEST_F(XylemFixture, CreateHelperTaskTouchesTargetCluster)
{
    hw::Machine m2{hw::CedarConfig::withProcs(32)};
    bool done = false;
    m2.xylem().createHelperTask(m2.ce(0), 2, [&] { done = true; });
    m2.eq().run();
    EXPECT_TRUE(done);
    EXPECT_GT(m2.acct().ce(16).inOs(OsAct::cpi), 0u); // cluster 2 CEs
    EXPECT_GT(m2.acct().ce(0).inOs(OsAct::syscall_glbl), 0u);
}

} // namespace
